#include "explore/cell_store.h"

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace chiplet::explore {

namespace {

/// Fixed per-entry bookkeeping charge (list/map nodes, small members).
constexpr std::size_t kEntryOverhead = 128;

/// Slot key: tech-group identity folded into the cell hash with the
/// FNV-1a constants, so one flat map covers every group.
std::uint64_t slot_key(std::uint64_t tech_hash, std::uint64_t cell) {
    std::uint64_t state = 1469598103934665603ull;
    for (const std::uint64_t v : {tech_hash, cell}) {
        for (int i = 0; i < 8; ++i) {
            state ^= (v >> (8 * i)) & 0xff;
            state *= 1099511628211ull;
        }
    }
    return state;
}

std::size_t approx_system_bytes(const design::System& system) {
    std::size_t bytes = sizeof(design::System) + system.name().size() +
                        system.packaging().size() +
                        system.package_design().size();
    for (const design::ChipPlacement& placement : system.placements()) {
        bytes += sizeof(design::ChipPlacement) + placement.chip.name().size() +
                 placement.chip.node().size();
        for (const design::Module& module : placement.chip.modules()) {
            bytes += sizeof(design::Module) + module.name.size() +
                     module.node.size();
        }
    }
    return bytes;
}

std::size_t approx_cost_bytes(const core::SystemCost& cost) {
    std::size_t bytes = sizeof(core::SystemCost) + cost.system_name.size();
    for (const core::DieReport& die : cost.dies) {
        bytes += sizeof(core::DieReport) + die.chip_name.size() +
                 die.node.size();
    }
    for (const core::CostTerm& term : cost.ledger.terms) {
        bytes += sizeof(core::CostTerm) + term.id.size() + term.label.size() +
                 term.paper_eq.size();
    }
    return bytes;
}

}  // namespace

struct CellStore::Impl {
    struct Entry {
        std::uint64_t key = 0;        ///< slot_key(tech_hash, cell_hash)
        std::uint64_t tech_hash = 0;
        std::uint64_t cell_hash = 0;
        CellEval eval = CellEval::full;
        design::System system;  ///< full identity, verified on every probe
        std::shared_ptr<const core::SystemCost> cost;  ///< immutable, shared
        std::size_t bytes = 0;
    };

    struct Shard {
        mutable std::mutex mutex;
        std::list<Entry> lru;  ///< front = most recently used
        std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
        std::size_t bytes = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t collisions = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        std::uint64_t rejected = 0;
    };

    Config config;
    std::size_t shard_budget = 0;
    std::vector<Shard> shards;

    explicit Impl(Config c) : config(c) {
        if (config.shards == 0) config.shards = 1;
        shard_budget = config.max_bytes / config.shards;
        shards = std::vector<Shard>(config.shards);
    }

    Shard& shard_for(std::uint64_t key) {
        return shards[static_cast<std::size_t>(key % config.shards)];
    }
    const Shard& shard_for(std::uint64_t key) const {
        return shards[static_cast<std::size_t>(key % config.shards)];
    }

    static bool matches(const Entry& entry, std::uint64_t tech_hash,
                        CellEval eval, std::uint64_t hash,
                        const design::System& system) {
        return entry.tech_hash == tech_hash && entry.eval == eval &&
               entry.cell_hash == hash && entry.system == system;
    }

    void evict_over_budget(Shard& shard) {
        while (shard.bytes > shard_budget && !shard.lru.empty()) {
            const Entry& cold = shard.lru.back();
            shard.bytes -= cold.bytes;
            shard.index.erase(cold.key);
            shard.lru.pop_back();
            ++shard.evictions;
        }
    }
};

CellStore::CellStore() : CellStore(Config{}) {}

CellStore::CellStore(Config config) : impl_(new Impl(config)) {}

CellStore::~CellStore() { delete impl_; }

bool CellStore::lookup(std::uint64_t tech_hash, CellEval eval,
                       std::uint64_t hash, const design::System& system,
                       std::shared_ptr<const core::SystemCost>& out) {
    const std::uint64_t key = slot_key(tech_hash, hash);
    Impl::Shard& shard = impl_->shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        ++shard.misses;
        return false;
    }
    if (!Impl::matches(*it->second, tech_hash, eval, hash, system)) {
        ++shard.collisions;
        ++shard.misses;
        return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.hits;
    out = it->second->cost;
    return true;
}

bool CellStore::peek(std::uint64_t tech_hash, CellEval eval,
                     std::uint64_t hash, const design::System& system) const {
    const std::uint64_t key = slot_key(tech_hash, hash);
    const Impl::Shard& shard = impl_->shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    return it != shard.index.end() &&
           Impl::matches(*it->second, tech_hash, eval, hash, system);
}

void CellStore::insert(std::uint64_t tech_hash, CellEval eval,
                       std::uint64_t hash, const design::System& system,
                       std::shared_ptr<const core::SystemCost> cost) {
    const std::uint64_t key = slot_key(tech_hash, hash);
    const std::size_t bytes = approx_system_bytes(system) +
                              approx_cost_bytes(*cost) + kEntryOverhead;

    Impl::Shard& shard = impl_->shard_for(key);
    if (bytes > impl_->shard_budget) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        ++shard.rejected;
        return;
    }
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        // Refresh (same cell) or overwrite (slot collision): the newest
        // evaluation wins either way.
        shard.bytes -= it->second->bytes;
        Impl::Entry& entry = *it->second;
        entry.tech_hash = tech_hash;
        entry.cell_hash = hash;
        entry.eval = eval;
        entry.system = system;
        entry.cost = std::move(cost);
        entry.bytes = bytes;
        shard.bytes += bytes;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
        shard.lru.push_front(Impl::Entry{key, tech_hash, hash, eval, system,
                                         std::move(cost), bytes});
        shard.index.emplace(key, shard.lru.begin());
        shard.bytes += bytes;
    }
    ++shard.insertions;
    impl_->evict_over_budget(shard);
}

void CellStore::insert(std::uint64_t tech_hash, CellEval eval,
                       std::uint64_t hash, const design::System& system,
                       core::SystemCost cost) {
    insert(tech_hash, eval, hash, system,
           std::make_shared<const core::SystemCost>(std::move(cost)));
}

CellStore::Stats CellStore::stats() const {
    Stats out;
    for (const Impl::Shard& shard : impl_->shards) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        out.hits += shard.hits;
        out.misses += shard.misses;
        out.collisions += shard.collisions;
        out.insertions += shard.insertions;
        out.evictions += shard.evictions;
        out.rejected += shard.rejected;
        out.entries += shard.lru.size();
        out.bytes += shard.bytes;
    }
    return out;
}

void CellStore::clear() {
    for (Impl::Shard& shard : impl_->shards) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.lru.clear();
        shard.index.clear();
        shard.bytes = 0;
    }
}

std::size_t CellStore::max_bytes() const { return impl_->config.max_bytes; }

}  // namespace chiplet::explore
