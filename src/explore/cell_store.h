// Process-lifetime cross-study cell memoisation.  The study compiler's
// CellTable (explore/cell.h) shares priced cost cells *within* one
// compiled batch and dies with it; this store promotes those cells to
// the process lifetime, so sweeps, breakeven probes, recommend and
// design_space studies arriving in *different* batches — different
// requests, different connections — reuse each other's evaluations.
//
// Keying follows the cell layer's exactness discipline: the slot key
// combines the tech-group hash (FNV of the group's canonical
// tech-override document) with cell_hash(eval, system), and every probe
// verifies the full stored design::System by equality — an FNV
// collision degrades to a miss, never to a wrong cost.  Tech identity
// rides in the tech hash rather than the cell hash because the
// in-batch CellTable deliberately excludes it; one store therefore
// serves one base actuary (the server's), which docs/studies.md spells
// out.
//
// Bounded and thread-safe exactly like StudyCache: sharded, one mutex
// and one LRU list per shard, byte-estimated entries evicted from the
// cold end until the shard is back under max_bytes / shards.
#pragma once

#include <cstdint>
#include <memory>

#include "core/cost_result.h"
#include "design/system.h"
#include "explore/cell.h"

namespace chiplet::explore {

class CellStore {
public:
    struct Config {
        std::size_t max_bytes = 16ull << 20;  ///< total across all shards
        unsigned shards = 8;                  ///< clamped to >= 1
    };

    CellStore();  ///< default Config
    explicit CellStore(Config config);
    ~CellStore();

    CellStore(const CellStore&) = delete;
    CellStore& operator=(const CellStore&) = delete;

    /// Returns true and fills `out` with the stored cost when the cell
    /// is present under `tech_hash` and the stored system equals
    /// `system` (collision-proof).  Counts a hit or miss and refreshes
    /// the entry's LRU position.  `hash` must be cell_hash(eval, system).
    /// Costs are immutable and shared: a hit hands out a reference to
    /// the stored object, never a deep copy, so a warm cell costs a
    /// probe plus a pointer — eviction can't invalidate what was handed
    /// out.
    [[nodiscard]] bool lookup(std::uint64_t tech_hash, CellEval eval,
                              std::uint64_t hash,
                              const design::System& system,
                              std::shared_ptr<const core::SystemCost>& out);

    /// Like lookup but counts nothing and touches no LRU state — the
    /// planning surface (`actuary_cli study --plan`) peeks without
    /// perturbing what it reports on.
    [[nodiscard]] bool peek(std::uint64_t tech_hash, CellEval eval,
                            std::uint64_t hash,
                            const design::System& system) const;

    /// Stores (or refreshes) the priced cell.  Entries larger than a
    /// whole shard's budget are rejected rather than cycling the shard
    /// empty; a slot collision overwrites (newest wins), matching the
    /// study cache.  The shared cost must never be mutated after
    /// insertion — every hit aliases it.
    void insert(std::uint64_t tech_hash, CellEval eval, std::uint64_t hash,
                const design::System& system,
                std::shared_ptr<const core::SystemCost> cost);

    /// Convenience for callers holding a plain value: wraps `cost` into
    /// a shared immutable object and inserts it.
    void insert(std::uint64_t tech_hash, CellEval eval, std::uint64_t hash,
                const design::System& system, core::SystemCost cost);

    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;      ///< includes collisions
        std::uint64_t collisions = 0;  ///< slot matched, system differed
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        std::uint64_t rejected = 0;
        std::size_t entries = 0;
        std::size_t bytes = 0;

        /// Lifetime cross-study hit rate: the fraction of probed cells
        /// another batch had already priced.
        [[nodiscard]] double hit_rate() const {
            const double total =
                static_cast<double>(hits) + static_cast<double>(misses);
            return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
        }
    };
    [[nodiscard]] Stats stats() const;

    /// Drops every entry (counters keep running).
    void clear();

    [[nodiscard]] std::size_t max_bytes() const;

private:
    struct Impl;
    Impl* impl_;
};

}  // namespace chiplet::explore
