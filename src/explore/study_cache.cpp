#include "explore/study_cache.h"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "explore/cache_store.h"
#include "explore/spec_hash.h"
#include "explore/study_graph.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace chiplet::explore {

namespace {

/// Fixed per-entry bookkeeping charge on top of the measured strings
/// (list/map nodes, StudyResult small members).
constexpr std::size_t kEntryOverhead = 160;

/// Estimated resident bytes of a cached result, without serialising it
/// (the server serialises once per response already; doubling that work
/// on every insert would tax exactly the cold path the cache exists to
/// absorb).  The table's formatted strings carry the same content the
/// typed payload holds, so the payload is folded in as a second helping
/// of the table weight.
std::size_t approx_result_bytes(const StudyResult& result) {
    std::size_t strings = result.name.size();
    for (const std::string& column : result.table.columns) {
        strings += column.size() + 32;
    }
    for (const auto& row : result.table.rows) {
        strings += 32;
        for (const std::string& cell : row) strings += cell.size() + 32;
    }
    // Explain-enabled results carry itemised ledgers whose strings can
    // dominate the table's; charge them so the memory bound holds.
    std::size_t ledger_bytes = 0;
    for (const StudyLedger& entry : result.ledgers) {
        ledger_bytes += entry.label.size() + 32;
        for (const core::CostTerm& term : entry.ledger.terms) {
            ledger_bytes += term.id.size() + term.label.size() +
                            term.paper_eq.size() + sizeof(core::CostTerm) + 32;
        }
    }
    return sizeof(StudyResult) + 2 * strings + ledger_bytes;
}

}  // namespace

struct StudyCache::Impl {
    struct Entry {
        std::uint64_t key = 0;
        std::string canonical;
        // Immutable once inserted; shared so a hit can copy the pointer
        // under the shard lock and do the expensive StudyResult copy
        // outside it (concurrent hits on one shard stay parallel).
        std::shared_ptr<const StudyResult> result;
        std::size_t bytes = 0;
    };

    struct Shard {
        mutable std::mutex mutex;
        std::list<Entry> lru;  ///< front = most recently used
        std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
        std::size_t bytes = 0;
        // Counters live per shard so they share the shard lock.
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t collisions = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        std::uint64_t rejected = 0;
    };

    Config config;
    std::uint64_t mask = ~0ull;
    std::size_t shard_budget = 0;
    std::vector<Shard> shards;
    // Optional persistent write-through target (explore/cache_store.h);
    // atomic so attach/detach never races inserts from server threads.
    std::atomic<StudyCacheStore*> store{nullptr};

    explicit Impl(Config c) : config(c) {
        if (config.shards == 0) config.shards = 1;
        if (config.hash_bits > 64) config.hash_bits = 64;
        mask = config.hash_bits == 64 ? ~0ull
                                      : (1ull << config.hash_bits) - 1ull;
        shard_budget = config.max_bytes / config.shards;
        shards = std::vector<Shard>(config.shards);
    }

    Shard& shard_for(std::uint64_t masked) {
        return shards[static_cast<std::size_t>(masked % config.shards)];
    }

    void evict_over_budget(Shard& shard) {
        while (shard.bytes > shard_budget && !shard.lru.empty()) {
            const Entry& cold = shard.lru.back();
            shard.bytes -= cold.bytes;
            shard.index.erase(cold.key);
            shard.lru.pop_back();
            ++shard.evictions;
        }
    }
};

StudyCache::StudyCache() : StudyCache(Config{}) {}

StudyCache::StudyCache(Config config) : impl_(new Impl(config)) {}

StudyCache::~StudyCache() { delete impl_; }

std::optional<StudyResult> StudyCache::lookup(const std::string& canonical,
                                              std::uint64_t hash) {
    const std::uint64_t masked = hash & impl_->mask;
    Impl::Shard& shard = impl_->shard_for(masked);
    std::shared_ptr<const StudyResult> hit;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.index.find(masked);
        if (it == shard.index.end()) {
            ++shard.misses;
            return std::nullopt;
        }
        if (it->second->canonical != canonical) {
            // Hash collision: the slot belongs to a different spec.
            // Never serve it — fall through to evaluation.
            ++shard.collisions;
            ++shard.misses;
            return std::nullopt;
        }
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        ++shard.hits;
        hit = it->second->result;
    }
    // The deep copy of the result happens outside the shard lock, so
    // concurrent hits on one shard do not serialise on string copies.
    StudyResult out = *hit;
    out.run.from_cache = true;
    return out;
}

void StudyCache::insert(const std::string& canonical, std::uint64_t hash,
                        const StudyResult& result) {
    // Write-through to the persistent store first (no shard lock held;
    // the store serialises internally).  Disk is not charged against the
    // memory bound, so even an entry the shard rejects below is worth
    // persisting — it warms the next process start.
    if (StudyCacheStore* store =
            impl_->store.load(std::memory_order_acquire)) {
        store->put(canonical, hash, result);
    }
    const std::uint64_t masked = hash & impl_->mask;
    // Entry weight = canonical key + estimated resident result bytes
    // (computed outside the lock).
    const std::size_t bytes =
        canonical.size() + approx_result_bytes(result) + kEntryOverhead;

    Impl::Shard& shard = impl_->shard_for(masked);
    if (bytes > impl_->shard_budget) {
        // Caching this entry would evict the whole shard and then still
        // not fit; keep the shard's working set instead.
        std::lock_guard<std::mutex> lock(shard.mutex);
        ++shard.rejected;
        return;
    }
    // Snapshot the result outside the lock; entries are immutable after
    // this (lookup shares the pointer).
    auto stored = std::make_shared<StudyResult>(result);
    stored->run.from_cache = false;

    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(masked);
    if (it != shard.index.end()) {
        // Refresh (same spec) or overwrite (masked-hash collision): the
        // newest result wins the slot either way.
        shard.bytes -= it->second->bytes;
        it->second->canonical = canonical;
        it->second->result = std::move(stored);
        it->second->bytes = bytes;
        shard.bytes += bytes;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
        shard.lru.push_front(
            Impl::Entry{masked, canonical, std::move(stored), bytes});
        shard.index.emplace(masked, shard.lru.begin());
        shard.bytes += bytes;
    }
    ++shard.insertions;
    impl_->evict_over_budget(shard);
}

std::optional<StudyResult> StudyCache::lookup(const StudySpec& spec) {
    const std::string canonical = canonical_spec_json(spec);
    return lookup(canonical, fnv1a64(canonical));
}

void StudyCache::insert(const StudySpec& spec, const StudyResult& result) {
    const std::string canonical = canonical_spec_json(spec);
    insert(canonical, fnv1a64(canonical), result);
}

StudyCache::Stats StudyCache::stats() const {
    Stats out;
    for (const Impl::Shard& shard : impl_->shards) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        out.hits += shard.hits;
        out.misses += shard.misses;
        out.collisions += shard.collisions;
        out.insertions += shard.insertions;
        out.evictions += shard.evictions;
        out.rejected += shard.rejected;
        out.entries += shard.lru.size();
        out.bytes += shard.bytes;
    }
    return out;
}

void StudyCache::clear() {
    for (Impl::Shard& shard : impl_->shards) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.lru.clear();
        shard.index.clear();
        shard.bytes = 0;
    }
}

std::size_t StudyCache::max_bytes() const { return impl_->config.max_bytes; }

void StudyCache::attach_store(StudyCacheStore* store) {
    impl_->store.store(store, std::memory_order_release);
}

StudyResult run_study_cached(const core::ChipletActuary& actuary,
                             const StudySpec& spec, StudyCache& cache) {
    const std::string canonical = canonical_spec_json(spec);
    const std::uint64_t hash = fnv1a64(canonical);
    if (std::optional<StudyResult> hit = cache.lookup(canonical, hash)) {
        return *std::move(hit);
    }
    StudyResult result = run_study(actuary, spec);
    cache.insert(canonical, hash, result);
    return result;
}

StudyBatchOutcome run_studies_collecting(const core::ChipletActuary& actuary,
                                         std::span<const StudySpec> specs,
                                         StudyCache* cache,
                                         CellStore* cell_store) {
    // The compiled execution graph (explore/study_graph.h) shares cost
    // cells across overlapping studies and serves byte-identical specs
    // once; payloads stay bit-identical to a serial cacheless loop.
    StudyGraphRun run = run_study_graph(actuary, specs, cache, cell_store);

    StudyBatchOutcome out;
    out.graph = run.stats;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (run.results[i]) {
            out.results.push_back(*std::move(run.results[i]));
            out.indices.push_back(i);
            continue;
        }
        StudyFailure failure;
        failure.index = i;
        failure.name = specs[i].name;
        try {
            std::rethrow_exception(run.errors[i]);
        } catch (const ParseError& e) {
            failure.stage = "parse";
            failure.message = e.what();
        } catch (const Error& e) {
            failure.stage = "model";
            failure.message = e.what();
        }
        out.failures.push_back(std::move(failure));
    }
    return out;
}

std::vector<StudyFailure> merge_failures(
    std::vector<StudyFailure> parse_failures,
    std::vector<StudyFailure> run_failures,
    std::span<const std::size_t> kept_indices) {
    for (StudyFailure& f : run_failures) {
        f.index = kept_indices[f.index];
    }
    parse_failures.insert(parse_failures.end(),
                          std::make_move_iterator(run_failures.begin()),
                          std::make_move_iterator(run_failures.end()));
    std::sort(parse_failures.begin(), parse_failures.end(),
              [](const StudyFailure& a, const StudyFailure& b) {
                  return a.index < b.index;
              });
    return parse_failures;
}

}  // namespace chiplet::explore
