#include "explore/cell.h"

#include <bit>
#include <cstring>
#include <string_view>
#include <utility>

namespace chiplet::explore {

namespace {

// ---- canonical streaming hash ------------------------------------------------
// Incremental FNV-1a (same constants as explore/spec_hash.h) over a
// fixed field order.  Strings are length-prefixed so adjacent fields
// can never alias ("ab"+"c" vs "a"+"bc"); doubles contribute their bit
// pattern, so two cells hash equally exactly when the evaluations are
// bit-identical inputs.
struct Fnv {
    std::uint64_t state = 1469598103934665603ull;

    void bytes(const void* data, std::size_t n) {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            state ^= p[i];
            state *= 1099511628211ull;
        }
    }
    void u64(std::uint64_t v) { bytes(&v, sizeof v); }
    void u8(std::uint8_t v) { bytes(&v, sizeof v); }
    void real(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void str(std::string_view s) {
        u64(s.size());
        bytes(s.data(), s.size());
    }
};

}  // namespace

std::uint64_t cell_hash(CellEval eval, const design::System& system) {
    Fnv h;
    h.u8(static_cast<std::uint8_t>(eval));
    h.str(system.name());
    h.str(system.packaging());
    h.str(system.package_design());
    h.real(system.quantity());
    h.u64(system.placements().size());
    for (const design::ChipPlacement& placement : system.placements()) {
        h.u64(placement.count);
        const design::Chip& chip = placement.chip;
        h.str(chip.name());
        h.str(chip.node());
        h.real(chip.d2d_fraction());
        h.u64(chip.modules().size());
        for (const design::Module& module : chip.modules()) {
            h.str(module.name);
            h.real(module.area_mm2);
            h.str(module.node);
            h.u8(module.scalable ? 1 : 0);
        }
    }
    return h.state;
}

// ---- CellTable ---------------------------------------------------------------

std::size_t CellTable::probe(std::uint64_t hash, CellEval eval,
                             const design::System& system) const {
    if (buckets_.empty()) return static_cast<std::size_t>(-1);
    std::uint32_t at = buckets_[hash & bucket_mask_];
    while (at != 0) {
        const Entry& entry = entries_[at - 1];
        if (entry.hash == hash && entry.eval == eval &&
            arrays_[static_cast<std::size_t>(entry.eval)]
                    .systems[entry.slot] == system) {
            return at - 1;
        }
        at = entry.bucket_next;
    }
    return static_cast<std::size_t>(-1);
}

CellTable::Interned CellTable::intern(CellEval eval,
                                      const design::System& system) {
    const std::uint64_t hash = cell_hash(eval, system);
    if (const std::size_t existing = probe(hash, eval, system);
        existing != static_cast<std::size_t>(-1)) {
        return {static_cast<std::uint32_t>(existing), false};
    }
    // Grow the open-chained bucket array at load factor 1.
    if (entries_.size() + 1 > buckets_.size()) {
        std::size_t capacity = buckets_.empty() ? 64 : buckets_.size() * 2;
        buckets_.assign(capacity, 0);
        bucket_mask_ = capacity - 1;
        for (std::uint32_t i = 0; i < entries_.size(); ++i) {
            const std::size_t b = entries_[i].hash & bucket_mask_;
            entries_[i].bucket_next = buckets_[b];
            buckets_[b] = i + 1;
        }
    }
    EvalArrays& arrays = arrays_[static_cast<std::size_t>(eval)];
    Entry entry;
    entry.hash = hash;
    entry.eval = eval;
    entry.slot = static_cast<std::uint32_t>(arrays.systems.size());
    arrays.systems.push_back(system);
    const std::size_t bucket = hash & bucket_mask_;
    entry.bucket_next = buckets_[bucket];
    entries_.push_back(entry);
    buckets_[bucket] = static_cast<std::uint32_t>(entries_.size());
    return {static_cast<std::uint32_t>(entries_.size() - 1), true};
}

void CellTable::evaluate_all(const core::ChipletActuary& actuary) {
    for (std::size_t kind = 0; kind < 2; ++kind) {
        EvalArrays& arrays = arrays_[kind];
        if (arrays.systems.empty()) continue;
        const bool re_only = kind == static_cast<std::size_t>(CellEval::re_only);
        // The fault-isolated batch entry point: dies are pre-priced with
        // the SoA kernels in one sweep, results fill slot-ordered (each
        // index owns its slot, deterministic for any pool size), and a
        // throwing cell (bad node, infeasible geometry) stays unfilled
        // instead of aborting the batch — the study that owns it
        // re-evaluates during reduction and reports the error with the
        // engine's own message.
        actuary.evaluate_batch_isolated(arrays.systems, re_only, arrays.costs,
                                        arrays.filled);
    }
}

const core::SystemCost* CellTable::find(CellEval eval,
                                        const design::System& system) const {
    const std::size_t at = probe(cell_hash(eval, system), eval, system);
    if (at == static_cast<std::size_t>(-1)) return nullptr;
    const Entry& entry = entries_[at];
    const EvalArrays& arrays = arrays_[static_cast<std::size_t>(eval)];
    if (arrays.filled.size() <= entry.slot || arrays.filled[entry.slot] == 0) {
        return nullptr;
    }
    return &arrays.costs[entry.slot];
}

// ---- CellMemoView ------------------------------------------------------------

bool CellMemoView::lookup(const design::System& system, bool re_only,
                          core::SystemCost& out) const {
    const core::SystemCost* cost =
        table_->find(re_only ? CellEval::re_only : CellEval::full, system);
    if (cost == nullptr) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    out = *cost;
    return true;
}

}  // namespace chiplet::explore
