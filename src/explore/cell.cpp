#include "explore/cell.h"

#include <bit>
#include <cstring>
#include <memory>
#include <string_view>
#include <utility>

#include "explore/cell_store.h"

namespace chiplet::explore {

namespace {

// ---- canonical streaming hash ------------------------------------------------
// Incremental FNV-1a (same constants as explore/spec_hash.h) over a
// fixed field order.  Strings are length-prefixed so adjacent fields
// can never alias ("ab"+"c" vs "a"+"bc"); doubles contribute their bit
// pattern, so two cells hash equally exactly when the evaluations are
// bit-identical inputs.
struct Fnv {
    std::uint64_t state = 1469598103934665603ull;

    void bytes(const void* data, std::size_t n) {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            state ^= p[i];
            state *= 1099511628211ull;
        }
    }
    void u64(std::uint64_t v) { bytes(&v, sizeof v); }
    void u8(std::uint8_t v) { bytes(&v, sizeof v); }
    void real(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void str(std::string_view s) {
        u64(s.size());
        bytes(s.data(), s.size());
    }
};

/// Sweeps `systems` through the fault-isolated batch entry point, then
/// wraps each filled result into the shared immutable object the table
/// and the cross-study CellStore alias (explore/cell_store.h).
void evaluate_into_shared(
    const core::ChipletActuary& actuary,
    const std::vector<design::System>& systems, bool re_only,
    std::vector<std::shared_ptr<const core::SystemCost>>& costs,
    std::vector<char>& filled) {
    std::vector<core::SystemCost> raw;
    actuary.evaluate_batch_isolated(systems, re_only, raw, filled);
    costs.assign(systems.size(), nullptr);
    for (std::size_t i = 0; i < systems.size(); ++i) {
        if (filled[i] != 0) {
            costs[i] =
                std::make_shared<const core::SystemCost>(std::move(raw[i]));
        }
    }
}

}  // namespace

std::uint64_t cell_hash(CellEval eval, const design::System& system) {
    Fnv h;
    h.u8(static_cast<std::uint8_t>(eval));
    h.str(system.name());
    h.str(system.packaging());
    h.str(system.package_design());
    h.real(system.quantity());
    h.u64(system.placements().size());
    for (const design::ChipPlacement& placement : system.placements()) {
        h.u64(placement.count);
        const design::Chip& chip = placement.chip;
        h.str(chip.name());
        h.str(chip.node());
        h.real(chip.d2d_fraction());
        h.u64(chip.modules().size());
        for (const design::Module& module : chip.modules()) {
            h.str(module.name);
            h.real(module.area_mm2);
            h.str(module.node);
            h.u8(module.scalable ? 1 : 0);
        }
    }
    return h.state;
}

// ---- CellTable ---------------------------------------------------------------

std::size_t CellTable::probe(std::uint64_t hash, CellEval eval,
                             const design::System& system) const {
    if (buckets_.empty()) return static_cast<std::size_t>(-1);
    std::uint32_t at = buckets_[hash & bucket_mask_];
    while (at != 0) {
        const Entry& entry = entries_[at - 1];
        if (entry.hash == hash && entry.eval == eval &&
            arrays_[static_cast<std::size_t>(entry.eval)]
                    .systems[entry.slot] == system) {
            return at - 1;
        }
        at = entry.bucket_next;
    }
    return static_cast<std::size_t>(-1);
}

CellTable::Interned CellTable::intern(CellEval eval,
                                      const design::System& system) {
    const std::uint64_t hash = cell_hash(eval, system);
    if (const std::size_t existing = probe(hash, eval, system);
        existing != static_cast<std::size_t>(-1)) {
        return {static_cast<std::uint32_t>(existing), false};
    }
    // Grow the open-chained bucket array at load factor 1.
    if (entries_.size() + 1 > buckets_.size()) {
        std::size_t capacity = buckets_.empty() ? 64 : buckets_.size() * 2;
        buckets_.assign(capacity, 0);
        bucket_mask_ = capacity - 1;
        for (std::uint32_t i = 0; i < entries_.size(); ++i) {
            const std::size_t b = entries_[i].hash & bucket_mask_;
            entries_[i].bucket_next = buckets_[b];
            buckets_[b] = i + 1;
        }
    }
    EvalArrays& arrays = arrays_[static_cast<std::size_t>(eval)];
    Entry entry;
    entry.hash = hash;
    entry.eval = eval;
    entry.slot = static_cast<std::uint32_t>(arrays.systems.size());
    arrays.systems.push_back(system);
    const std::size_t bucket = hash & bucket_mask_;
    entry.bucket_next = buckets_[bucket];
    entries_.push_back(entry);
    buckets_[bucket] = static_cast<std::uint32_t>(entries_.size());
    return {static_cast<std::uint32_t>(entries_.size() - 1), true};
}

void CellTable::evaluate_all(const core::ChipletActuary& actuary) {
    for (std::size_t kind = 0; kind < 2; ++kind) {
        EvalArrays& arrays = arrays_[kind];
        if (arrays.systems.empty()) continue;
        const bool re_only = kind == static_cast<std::size_t>(CellEval::re_only);
        // The fault-isolated batch entry point: dies are pre-priced with
        // the SoA kernels in one sweep, results fill slot-ordered (each
        // index owns its slot, deterministic for any pool size), and a
        // throwing cell (bad node, infeasible geometry) stays unfilled
        // instead of aborting the batch — the study that owns it
        // re-evaluates during reduction and reports the error with the
        // engine's own message.
        evaluate_into_shared(actuary, arrays.systems, re_only, arrays.costs,
                             arrays.filled);
    }
}

std::size_t CellTable::prefill_from(CellStore& store, std::uint64_t tech_hash) {
    for (EvalArrays& arrays : arrays_) {
        arrays.costs.resize(arrays.systems.size());
        arrays.filled.assign(arrays.systems.size(), 0);
        arrays.prefilled.assign(arrays.systems.size(), 0);
    }
    std::size_t hits = 0;
    for (const Entry& entry : entries_) {
        EvalArrays& arrays = arrays_[static_cast<std::size_t>(entry.eval)];
        std::shared_ptr<const core::SystemCost> cost;
        if (store.lookup(tech_hash, entry.eval, entry.hash,
                         arrays.systems[entry.slot], cost)) {
            arrays.costs[entry.slot] = std::move(cost);
            arrays.filled[entry.slot] = 1;
            arrays.prefilled[entry.slot] = 1;
            ++hits;
        }
    }
    return hits;
}

void CellTable::evaluate_pending(const core::ChipletActuary& actuary) {
    for (std::size_t kind = 0; kind < 2; ++kind) {
        EvalArrays& arrays = arrays_[kind];
        if (arrays.systems.empty()) continue;
        const bool re_only = kind == static_cast<std::size_t>(CellEval::re_only);
        if (arrays.filled.size() != arrays.systems.size()) {
            // No prefill ran for this table: the plain contiguous sweep.
            evaluate_into_shared(actuary, arrays.systems, re_only,
                                 arrays.costs, arrays.filled);
            continue;
        }
        std::vector<std::uint32_t> pending;
        for (std::uint32_t i = 0; i < arrays.systems.size(); ++i) {
            if (arrays.filled[i] == 0) pending.push_back(i);
        }
        if (pending.empty()) continue;
        if (pending.size() == arrays.systems.size()) {
            // Store-cold: keep the zero-copy contiguous fast path.
            evaluate_into_shared(actuary, arrays.systems, re_only,
                                 arrays.costs, arrays.filled);
            continue;
        }
        // Partially warm: sweep the cold subset compactly and scatter
        // back.  Per-system costs are independent of batch composition
        // (each system is its own one-member family), so the subset
        // sweep is bit-identical to the slots a full sweep would fill.
        std::vector<design::System> subset;
        subset.reserve(pending.size());
        for (const std::uint32_t i : pending) {
            subset.push_back(arrays.systems[i]);
        }
        std::vector<core::SystemCost> subset_costs;
        std::vector<char> subset_filled;
        actuary.evaluate_batch_isolated(subset, re_only, subset_costs,
                                        subset_filled);
        for (std::size_t k = 0; k < pending.size(); ++k) {
            if (subset_filled[k] == 0) continue;
            arrays.costs[pending[k]] = std::make_shared<const core::SystemCost>(
                std::move(subset_costs[k]));
            arrays.filled[pending[k]] = 1;
        }
    }
}

std::size_t CellTable::publish_to(CellStore& store,
                                  std::uint64_t tech_hash) const {
    std::size_t published = 0;
    for (const Entry& entry : entries_) {
        const EvalArrays& arrays =
            arrays_[static_cast<std::size_t>(entry.eval)];
        if (entry.slot >= arrays.filled.size() ||
            arrays.filled[entry.slot] == 0) {
            continue;  // evaluation failed; nothing trustworthy to share
        }
        if (entry.slot < arrays.prefilled.size() &&
            arrays.prefilled[entry.slot] != 0) {
            continue;  // came from the store; re-inserting adds nothing
        }
        store.insert(tech_hash, entry.eval, entry.hash,
                     arrays.systems[entry.slot], arrays.costs[entry.slot]);
        ++published;
    }
    return published;
}

std::size_t CellTable::count_warm(const CellStore& store,
                                  std::uint64_t tech_hash) const {
    std::size_t warm = 0;
    for (const Entry& entry : entries_) {
        const EvalArrays& arrays =
            arrays_[static_cast<std::size_t>(entry.eval)];
        if (store.peek(tech_hash, entry.eval, entry.hash,
                       arrays.systems[entry.slot])) {
            ++warm;
        }
    }
    return warm;
}

const core::SystemCost* CellTable::find(CellEval eval,
                                        const design::System& system) const {
    const std::size_t at = probe(cell_hash(eval, system), eval, system);
    if (at == static_cast<std::size_t>(-1)) return nullptr;
    const Entry& entry = entries_[at];
    const EvalArrays& arrays = arrays_[static_cast<std::size_t>(eval)];
    if (arrays.filled.size() <= entry.slot || arrays.filled[entry.slot] == 0) {
        return nullptr;
    }
    return arrays.costs[entry.slot].get();
}

// ---- CellMemoView ------------------------------------------------------------

bool CellMemoView::lookup(const design::System& system, bool re_only,
                          core::SystemCost& out) const {
    const core::SystemCost* cost =
        table_->find(re_only ? CellEval::re_only : CellEval::full, system);
    if (cost == nullptr) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    out = *cost;
    return true;
}

}  // namespace chiplet::explore
