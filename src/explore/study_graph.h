// The study compiler: a shared-work execution graph over a batch of
// StudySpecs.  Where run_study evaluates each study in isolation, the
// compiler first *plans* the batch —
//
//   1. byte-identical specs collapse onto one evaluation (spec_hash
//      identity, canonical JSON verified),
//   2. the survivors group by canonical tech-override document; each
//      group patches the base actuary once,
//   3. each study's engine enumeration is asked for the exact cost
//      cells (explore/cell.h) it will price; cells intern into the
//      group's CellTable, so a cell referenced by many studies exists
//      once —
//
// and then *executes* it: every group's unique cells are evaluated once,
// contiguously and slot-ordered on the global pool, after which each
// study runs its ordinary engine against an actuary carrying a
// CellMemoView of the group table.  The engine's single-system
// evaluations become memo hits, and anything the enumeration did not
// predict (or kinds the compiler treats as opaque — monte_carlo,
// sensitivity, tornado, breakeven, timeline, pareto) is priced by the
// engine exactly as before.  Payloads are therefore bit-identical to
// independent run_study calls by construction: a memo hit returns the
// SystemCost the very same entry point produced during the cell sweep,
// and a miss is the ordinary code path.
//
// run_studies / run_studies_collecting route through run_study_graph;
// plan_studies is the dry-run surface behind `actuary_cli study --plan`.
#pragma once

#include <cstdint>
#include <exception>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/actuary.h"
#include "explore/study.h"

namespace chiplet::explore {

/// One study's row of the compiled plan.
struct StudyPlanEntry {
    std::size_t index = 0;  ///< position in the submitted batch
    std::string name;
    StudyKind kind = StudyKind::re_sweep;
    std::uint64_t spec_hash = 0;  ///< canonical spec identity (spec_hash.h)
    /// True when an earlier spec in the batch is byte-identical; this
    /// study is served as a copy of `duplicate_of`'s result.
    bool duplicate_spec = false;
    std::size_t duplicate_of = 0;
    /// True when the compiler could enumerate this study's cells ahead
    /// of the run.  False for the opaque kinds, for configs the engine
    /// itself will reject, and for spaces over the enumeration budget —
    /// the study still runs, pricing its own cells.
    bool enumerable = false;
    std::uint64_t cell_refs = 0;  ///< cells the study will reference
    std::uint64_t new_cells = 0;  ///< of those, first interned by this study
};

/// The compiled execution graph of a batch, without any evaluation.
struct StudyPlan {
    std::vector<StudyPlanEntry> studies;  ///< one entry per spec, in order
    StudyGraphStats stats;
};

/// Compiles the batch and returns the plan: what would be shared, what
/// stays opaque, how many unique cells the execution graph holds.  No
/// cost model runs; a spec whose tech overrides fail to apply simply
/// plans as non-enumerable (the error surfaces when the batch runs).
/// With a cell store, the plan additionally peeks how many of the
/// batch's unique cells earlier batches already priced
/// (StudyGraphStats::store_hits / store_misses) without touching the
/// store's counters or LRU order.
[[nodiscard]] StudyPlan plan_studies(const core::ChipletActuary& actuary,
                                     std::span<const StudySpec> specs,
                                     const CellStore* cell_store = nullptr);

/// Raw graph execution outcome: one slot per submitted spec, holding
/// either the result or the original exception (ParseError for bad
/// tech-override documents, Error for model failures) with its type
/// preserved, so the throwing and collecting wrappers can each keep
/// their historical contract.
struct StudyGraphRun {
    std::vector<std::optional<StudyResult>> results;
    std::vector<std::exception_ptr> errors;
    StudyGraphStats stats;
};

/// Compiles and executes the batch.  With a cache, primaries are looked
/// up before compilation (hits contribute no cells) and fresh results
/// are inserted after evaluation.  With a cell store
/// (explore/cell_store.h), every group's table is prefilled from cells
/// earlier batches priced and newly evaluated cells are published back
/// — cross-study reuse at cell granularity, still bit-identical
/// because the store verifies full System equality and only ever
/// returns costs these same entry points produced.  Per-study cell
/// memo counters land in each result's StudyRunInfo.
[[nodiscard]] StudyGraphRun run_study_graph(const core::ChipletActuary& actuary,
                                            std::span<const StudySpec> specs,
                                            StudyCache* cache = nullptr,
                                            CellStore* cell_store = nullptr);

}  // namespace chiplet::explore
