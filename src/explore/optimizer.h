// The paper's "analytical method for decision-making on chiplet
// architecture problems": which integration scheme, how many chiplets.
// A thin, bit-for-bit-compatible wrapper over the design-space engine
// (explore/design_space.h), restricted to its original equal-area,
// single-node subspace; use explore_design_space directly for
// heterogeneous partitions, per-chiplet nodes, or large spaces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/actuary.h"

namespace chiplet::explore {

/// One candidate architecture.
struct DesignOption {
    std::string packaging;  ///< "SoC", "MCM", "InFO", "2.5D"
    unsigned chiplets = 1;
    double re_per_unit = 0.0;
    double nre_per_unit = 0.0;
    /// Enumeration index inside decision_space(query) — lets an explain
    /// pass rebuild this option's exact system via
    /// design_space_candidate_system.  Not part of the serialised payload.
    std::uint64_t space_index = 0;

    [[nodiscard]] double total_per_unit() const { return re_per_unit + nre_per_unit; }
};

/// Search space and workload description.
struct DecisionQuery {
    std::string node = "7nm";
    double module_area_mm2 = 400.0;
    double quantity = 1e6;
    double d2d_fraction = 0.10;
    unsigned max_chiplets = 5;
    std::vector<std::string> packagings = {"SoC", "MCM", "InFO", "2.5D"};
};

/// Ranked evaluation of every (packaging, chiplet count) option.
struct Recommendation {
    std::vector<DesignOption> options;  ///< sorted, cheapest first

    [[nodiscard]] const DesignOption& best() const { return options.front(); }

    /// Savings of the best option relative to the monolithic SoC,
    /// as a fraction of the SoC cost (negative when SoC wins).
    [[nodiscard]] double savings_vs_soc() const;
};

/// Evaluates the whole space: the SoC reference plus every multi-die
/// packaging with 2..max_chiplets equal chiplets.
[[nodiscard]] Recommendation recommend(const core::ChipletActuary& actuary,
                                       const DecisionQuery& query);

struct DesignSpaceConfig;  // explore/design_space.h

/// The design-space restriction recommend() actually runs: equal-area
/// split, one node, one quantity, no pruning, full ranking.  Exposed so
/// callers can map a DesignOption::space_index back to its system.
[[nodiscard]] DesignSpaceConfig decision_space(const DecisionQuery& query);

}  // namespace chiplet::explore
