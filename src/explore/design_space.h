// Heterogeneous design-space explorer: the combinatorial search the
// paper's architecture-exploration use case actually needs.  Where
// explore::recommend walks the tiny equal-area, single-node space, this
// engine enumerates
//
//   (partition into k chiplets) x (process node per chiplet)
//     x (packaging technology) x (production quantity)
//
// lazily — candidates are decoded from a flat index, never materialised
// as a list — prunes infeasible geometry (reticle/area bounds via
// core::audit's feasibility rules) before any cost evaluation, evaluates
// survivors in chunks on the global thread pool through
// ChipletActuary::evaluate_batch (die-cost cache hot), and streams
// results into a bounded top-K heap.  Million-candidate spaces run in
// O(chunk + K) memory with a deterministic ranking that is bit-identical
// to a serial scan for any pool size.
//
//   explore::DesignSpaceConfig config;
//   config.nodes = {"7nm", "12nm"};
//   config.chiplet_counts = {1, 2, 3, 4};
//   explore::DesignSpaceResult r = explore::explore_design_space(actuary, config);
//   r.best.front();  // cheapest feasible candidate
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/actuary.h"
#include "design/module.h"
#include "wafer/reticle.h"

namespace chiplet::explore {

/// Search-space description.  The workload is either a concrete module
/// list (heterogeneous partition via design::partition_modules) or a
/// homogeneous total area (equal-area split, the paper's Sec. 4.1
/// workload); every axis below multiplies the candidate count.
struct DesignSpaceConfig {
    // -- workload -------------------------------------------------------------
    /// Concrete modules to re-partition.  When non-empty, each chiplet
    /// count k yields the balanced k-way partition of this list (counts
    /// exceeding the module count are skipped); when empty, the
    /// homogeneous `module_area_mm2` workload is split equally instead.
    std::vector<design::Module> modules;
    double module_area_mm2 = 400.0;  ///< total logic area, equal-area mode
    /// Node the homogeneous area is specified at; scalable areas retarget
    /// to each chiplet's assigned node.  Empty = `nodes.front()`.
    std::string reference_node;

    // -- axes -----------------------------------------------------------------
    /// Chiplet counts for the multi-die packagings.  SoC-type packagings
    /// always contribute exactly one monolithic candidate per node/quantity
    /// regardless of this list.
    std::vector<unsigned> chiplet_counts = {1, 2, 3, 4, 5};
    /// Candidate process nodes, assigned per chiplet: a k-chiplet
    /// candidate has |nodes|^k assignments (|nodes| when `uniform_nodes`).
    std::vector<std::string> nodes = {"7nm"};
    bool uniform_nodes = false;  ///< restrict to one node for all chiplets
    std::vector<std::string> packagings = {"SoC", "MCM", "InFO", "2.5D"};
    std::vector<double> quantities = {1e6};
    /// D2D share of each die's final area on multi-die packagings (the
    /// paper assumes 0.10); SoC-type candidates carry none.
    double d2d_fraction = 0.10;

    // -- execution / pruning --------------------------------------------------
    unsigned top_k = 10;       ///< candidates to keep; 0 = keep the whole ranking
    std::size_t chunk = 1024;  ///< systems per evaluate_batch call
    /// Enumeration-index window [index_begin, index_end): restrict the
    /// scan to a contiguous slice of the flat space — the sharding unit
    /// of the actuaryd dispatcher (serve/dispatcher.h).  index_end == 0
    /// means "to the end of the space".  Candidate indices stay global,
    /// so per-range top-K heaps merge under the usual (cost, index)
    /// order into exactly the whole-space ranking; total_candidates /
    /// pruned / evaluated count the window only, so shard counts sum to
    /// the whole-space run's.  Both fields are serialised only when
    /// non-default, keeping the canonical spec JSON (and spec_hash) of
    /// whole-space studies byte-identical.
    std::uint64_t index_begin = 0;
    std::uint64_t index_end = 0;
    /// Geometry pre-screen: candidates whose dies fail the single-reticle
    /// bound (core::audit_dies_feasible) are dropped before evaluation.
    bool prune = true;
    wafer::ReticleSpec reticle;      ///< single-exposure limit for pruning
    double max_die_area_mm2 = 0.0;   ///< extra per-die cap; 0 = reticle only
};

/// One evaluated point of the space.
struct DesignCandidate {
    /// Position in enumeration order (packaging-major, then chiplet
    /// count, then node assignment, then quantity).  Ranking ties break
    /// on this index, which makes the top-K deterministic.
    std::uint64_t index = 0;
    std::string packaging;
    unsigned chiplets = 1;
    std::vector<std::string> nodes;     ///< assigned node per chiplet
    std::vector<double> die_areas_mm2;  ///< final die areas incl. D2D share
    double quantity = 0.0;
    double re_per_unit = 0.0;
    double nre_per_unit = 0.0;

    [[nodiscard]] double total_per_unit() const {
        return re_per_unit + nre_per_unit;
    }
};

/// Exploration outcome: the ranked survivors plus space accounting.
struct DesignSpaceResult {
    /// Ascending (total_per_unit, index); at most `top_k` entries (all
    /// evaluated candidates when top_k == 0).
    std::vector<DesignCandidate> best;
    std::uint64_t total_candidates = 0;  ///< size of the enumerated space
    std::uint64_t pruned = 0;            ///< dropped by the geometry pre-screen
    std::uint64_t evaluated = 0;         ///< total_candidates - pruned
    /// True when the config restricted the scan with an index window.
    /// Windowed result documents carry exact per-entry ordering keys so
    /// a dispatcher can merge shard rankings in the precise order the
    /// single-process comparator would produce — the 12-digit JSON
    /// serialisation of total_per_unit is not injective, so merging on
    /// parsed payload numbers alone can swap near-tied candidates.
    bool windowed = false;

    [[nodiscard]] double pruned_fraction() const {
        return total_candidates > 0
                   ? static_cast<double>(pruned) /
                         static_cast<double>(total_candidates)
                   : 0.0;
    }
};

/// Number of candidates `config` spans, without evaluating any of them.
/// Throws ParameterError when an axis is empty or the count overflows.
[[nodiscard]] std::uint64_t design_space_size(
    const core::ChipletActuary& actuary, const DesignSpaceConfig& config);

/// Runs the exploration.  The returned ranking is bit-identical for any
/// global pool size: chunks are evaluated slot-ordered on the pool and
/// folded into the top-K heap in enumeration order.
///
/// Spaces without an attached evaluation memo run on the SoA kernel
/// fast path (src/kernels/): candidates are lowered block-by-block into
/// structure-of-arrays form, dies/interposers are priced with the
/// active SIMD kernel table, and the Eq. 3-5 fold runs over whole
/// candidate waves.  Kernel results are bit-identical to the scalar
/// engine by policy, so ranking, accounting and every reported double
/// match explore_design_space_reference exactly; any candidate needing
/// the scalar engine's diagnostics falls back to the reference body
/// wholesale so error messages and first-error ordering have one home.
[[nodiscard]] DesignSpaceResult explore_design_space(
    const core::ChipletActuary& actuary, const DesignSpaceConfig& config);

/// The scalar-engine reference implementation: enumerate, prune,
/// evaluate survivors in chunks through ChipletActuary::evaluate_batch,
/// fold into the bounded heap.  This is the oracle the kernel fast
/// path is differentially tested against (tests/test_design_space.cpp,
/// bench/bench_design_space.cpp) and the fallback it routes to.
[[nodiscard]] DesignSpaceResult explore_design_space_reference(
    const core::ChipletActuary& actuary, const DesignSpaceConfig& config);

/// Rebuilds the concrete system of one enumerated candidate — by its
/// DesignCandidate::index — exactly as the explorer evaluated it, so an
/// explain pass over a ranked candidate reproduces its cost bit for
/// bit.  Throws ParameterError when `index` is outside the space.
[[nodiscard]] design::System design_space_candidate_system(
    const core::ChipletActuary& actuary, const DesignSpaceConfig& config,
    std::uint64_t index);

/// The exact systems explore_design_space would evaluate — window
/// applied, pruned candidates skipped, enumeration order — without
/// evaluating any of them.  This is the study compiler's cell
/// enumeration hook: interning these systems ahead of the run turns the
/// engine's evaluate_batch calls into memo hits.  Returns nullopt when
/// more than `max_systems` survivors exist (the caller falls back to
/// letting the engine stream the space itself); throws the same
/// validation errors as explore_design_space for a bad config.
[[nodiscard]] std::optional<std::vector<design::System>> design_space_systems(
    const core::ChipletActuary& actuary, const DesignSpaceConfig& config,
    std::size_t max_systems);

}  // namespace chiplet::explore
