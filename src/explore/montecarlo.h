// Monte-Carlo propagation of parameter uncertainty through the cost
// model.  Calibration inputs (defect densities, wafer prices, bonding
// yields) are estimates; this answers "how robust is the winner?"
// rather than "what is the point cost".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/actuary.h"
#include "explore/rng.h"
#include "explore/scenario_spec.h"

namespace chiplet::explore {

/// Mutates a copy of the technology library for one Monte-Carlo draw.
/// Draws run concurrently on the global thread pool, so a sampler must
/// be re-entrant: it may only touch the library and RNG it is handed
/// (the default sampler qualifies).
using LibrarySampler = std::function<void(tech::TechLibrary&, Rng&)>;

/// Summary statistics over per-unit total cost samples.
struct McResult {
    std::vector<double> samples;
    double mean = 0.0;
    double stddev = 0.0;
    double p05 = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
};

/// The default uncertainty model for one node + packaging: triangular
/// defect density (+/- `spread` relative), triangular wafer price
/// (+/- spread/2), bond yields jittered within [1 - (1-y)*2, 1] (i.e.
/// the *loss* halves or doubles).
[[nodiscard]] LibrarySampler default_sampler(const std::string& node,
                                             const std::string& packaging,
                                             double spread = 0.3);

/// Runs `n` draws evaluating the per-unit total cost of `system` on the
/// global thread pool.  Draw i uses RNG stream (seed, i), so the sample
/// vector is bit-identical for any pool size, including serial.
[[nodiscard]] McResult monte_carlo(const core::ChipletActuary& actuary,
                                   const design::System& system,
                                   const LibrarySampler& sampler, unsigned n,
                                   std::uint64_t seed = 42);

/// Fraction of draws in which `a` is strictly cheaper than `b`
/// (both evaluated under the same draw).  0.5 means a coin flip.
[[nodiscard]] double win_rate(const core::ChipletActuary& actuary,
                              const design::System& a, const design::System& b,
                              const LibrarySampler& sampler, unsigned n,
                              std::uint64_t seed = 42);

/// Declarative Monte-Carlo request: uncertainty of one scenario under
/// the default sampler, optionally racing a second scenario (win rate).
struct McStudyConfig {
    ScenarioSpec scenario;
    std::optional<ScenarioSpec> compare;  ///< win_rate vs this when set
    double spread = 0.3;                  ///< default_sampler spread
    unsigned draws = 1000;
    std::uint64_t seed = 42;
};

struct McStudyOutcome {
    McResult mc;              ///< statistics of `scenario`
    bool has_compare = false;
    double win_rate = 0.0;    ///< P(scenario cheaper than compare)
};

/// Runs the declarative form: builds both systems against the actuary's
/// library, samples with default_sampler(scenario.node,
/// scenario.packaging, spread).  Bit-identical to the typed calls with
/// the same inputs.
[[nodiscard]] McStudyOutcome run_monte_carlo(const core::ChipletActuary& actuary,
                                             const McStudyConfig& config);

}  // namespace chiplet::explore
