// The persistent half of the study cache: a versioned on-disk store of
// StudyResults, one file per canonical spec, that a restarted actuaryd
// loads back into its in-memory LRU (warm start).  Layered *under*
// StudyCache — the memory cache stays the single source of truth for
// lookups, byte-equality verification, and the LRU bound; the store
// only absorbs inserts (write-through) and replays them at startup.
//
// Entry file `<spec_hash as 16 hex digits>.study`:
//
//   bytes 0..7    magic "CACS" + 4-digit format number ("CACS0001")
//   bytes 8..15   model fingerprint (core/version.h), little-endian
//   bytes 16..23  spec_hash = fnv1a64(canonical), little-endian
//   ...           canonical spec JSON, u64 length prefix
//   ...           result body (explore/result_codec.h), u64 length prefix
//   last 8 bytes  FNV-1a checksum of everything before it
//
// Safety properties:
//  - Writes are atomic (util::write_file_atomic): readers and
//    concurrent writers — two servers may share one directory — see
//    whole files only, last writer wins, matching the in-memory
//    one-entry-per-slot policy.
//  - Loads are corruption-tolerant: wrong magic, a stale fingerprint, a
//    bad checksum, a truncated body, or undecodable content skips the
//    entry (counted in Stats) and never throws — the worst corrupt
//    cache is a cold one.
//  - Staleness is decided by the model fingerprint alone: entries
//    written by a binary whose equations, schema, or tech library
//    differ are ignored wholesale, so a warm start can never serve
//    numbers the current model would not produce.
#pragma once

#include <cstdint>
#include <string>

#include "explore/study.h"

namespace chiplet::explore {

class StudyCache;

class StudyCacheStore {
public:
    struct Config {
        std::string dir;  ///< created on construction if missing
        /// Fingerprint stamped into every written entry and required of
        /// every loaded one.  0 = core::model_fingerprint() of the
        /// built-in catalogue; servers pass their actuary's own.  The
        /// explicit knob doubles as the stale-version test seam.
        std::uint64_t fingerprint = 0;
    };

    /// Throws chiplet::Error when the directory cannot be created.
    explicit StudyCacheStore(Config config);
    ~StudyCacheStore();

    StudyCacheStore(const StudyCacheStore&) = delete;
    StudyCacheStore& operator=(const StudyCacheStore&) = delete;

    /// Persists one entry atomically.  Failures (unwritable directory,
    /// full disk) are counted, not thrown — persistence is an
    /// optimisation, never a serving-path error.
    void put(const std::string& canonical, std::uint64_t hash,
             const StudyResult& result);

    /// Replays every readable, current-fingerprint entry into `cache`
    /// via StudyCache::insert.  Call *before* attaching this store to
    /// the cache, or the load rewrites every file it just read.
    void load_into(StudyCache& cache);

    struct Stats {
        std::uint64_t loaded = 0;   ///< entries replayed into the cache
        std::uint64_t stale = 0;    ///< skipped: fingerprint mismatch
        std::uint64_t corrupt = 0;  ///< skipped: damaged or truncated
        std::uint64_t writes = 0;   ///< entries persisted
        std::uint64_t write_failures = 0;
    };
    [[nodiscard]] Stats stats() const;

    [[nodiscard]] const std::string& dir() const;
    [[nodiscard]] std::uint64_t fingerprint() const;

private:
    struct Impl;
    Impl* impl_;
};

}  // namespace chiplet::explore
