// Declarative reference to the paper's recurring single-system
// scenarios (core/scenarios.h), JSON-representable so study files can
// name a workload without embedding a full design document: a module
// area at a node, either monolithic ("SoC") or split into k chiplets on
// a multi-die integration.
#pragma once

#include <string>

#include "design/system.h"
#include "tech/tech_library.h"

namespace chiplet::explore {

/// One generated scenario; defaults mirror explore::DecisionQuery.
struct ScenarioSpec {
    std::string node = "7nm";
    std::string packaging = "SoC";
    double module_area_mm2 = 400.0;
    unsigned chiplets = 1;       ///< ignored for SoC-type packaging
    double d2d_fraction = 0.10;  ///< ignored for SoC-type packaging
    double quantity = 1e6;

    /// Materialises the system: core::monolithic_soc when `packaging`
    /// resolves to an SoC-type integration, core::split_system otherwise.
    /// Throws LookupError for unknown names, ParameterError for invalid
    /// geometry.
    [[nodiscard]] design::System build(const tech::TechLibrary& lib,
                                       const std::string& name = "scenario") const;
};

}  // namespace chiplet::explore
