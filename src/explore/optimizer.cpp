#include "explore/optimizer.h"

#include <algorithm>

#include "explore/design_space.h"
#include "util/error.h"

namespace chiplet::explore {

double Recommendation::savings_vs_soc() const {
    const auto soc = std::find_if(
        options.begin(), options.end(),
        [](const DesignOption& o) { return o.packaging == "SoC"; });
    CHIPLET_EXPECTS(soc != options.end(), "recommendation lacks the SoC reference");
    return (soc->total_per_unit() - options.front().total_per_unit()) /
           soc->total_per_unit();
}

DesignSpaceConfig decision_space(const DecisionQuery& query) {
    // The historical subspace: equal-area split, one node, one quantity,
    // no pruning, full ranking.  The engine's enumeration order
    // (packaging-major, then chiplet count) and its (cost, index)
    // tie-break reproduce the legacy stable sort bit for bit.
    DesignSpaceConfig config;
    config.module_area_mm2 = query.module_area_mm2;
    config.reference_node = query.node;
    config.nodes = {query.node};
    config.uniform_nodes = true;
    config.packagings = query.packagings;
    config.quantities = {query.quantity};
    config.d2d_fraction = query.d2d_fraction;
    config.chiplet_counts.clear();
    for (unsigned k = 2; k <= std::max(2u, query.max_chiplets); ++k) {
        config.chiplet_counts.push_back(k);
    }
    config.top_k = 0;      // rank the whole space
    config.prune = false;  // legacy evaluated every candidate
    return config;
}

Recommendation recommend(const core::ChipletActuary& actuary,
                         const DecisionQuery& query) {
    CHIPLET_EXPECTS(query.max_chiplets >= 1, "max_chiplets must be >= 1");
    CHIPLET_EXPECTS(!query.packagings.empty(), "no packagings to evaluate");

    // Thin wrapper over the design-space engine restricted to
    // decision_space(query).
    const DesignSpaceResult explored =
        explore_design_space(actuary, decision_space(query));
    Recommendation out;
    out.options.reserve(explored.best.size());
    for (const DesignCandidate& c : explored.best) {
        DesignOption option;
        option.packaging = c.packaging;
        option.chiplets = c.chiplets;
        option.re_per_unit = c.re_per_unit;
        option.nre_per_unit = c.nre_per_unit;
        option.space_index = c.index;
        out.options.push_back(std::move(option));
    }
    return out;
}

}  // namespace chiplet::explore
