#include "explore/optimizer.h"

#include <algorithm>

#include "core/scenarios.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace chiplet::explore {

double Recommendation::savings_vs_soc() const {
    const auto soc = std::find_if(
        options.begin(), options.end(),
        [](const DesignOption& o) { return o.packaging == "SoC"; });
    CHIPLET_EXPECTS(soc != options.end(), "recommendation lacks the SoC reference");
    return (soc->total_per_unit() - options.front().total_per_unit()) /
           soc->total_per_unit();
}

Recommendation recommend(const core::ChipletActuary& actuary,
                         const DecisionQuery& query) {
    CHIPLET_EXPECTS(query.max_chiplets >= 1, "max_chiplets must be >= 1");
    CHIPLET_EXPECTS(!query.packagings.empty(), "no packagings to evaluate");

    // Enumerate the candidate space in deterministic order, evaluate the
    // batch on the pool, then rank; the stable sort over slot-ordered
    // results matches the serial implementation exactly.
    std::vector<design::System> systems;
    std::vector<DesignOption> candidates;
    for (const std::string& packaging : query.packagings) {
        const bool is_soc = actuary.library().packaging(packaging).type ==
                            tech::IntegrationType::soc;
        std::vector<unsigned> counts;
        if (is_soc) {
            counts = {1};
        } else {
            for (unsigned k = 2; k <= std::max(2u, query.max_chiplets); ++k) {
                counts.push_back(k);
            }
        }
        for (unsigned k : counts) {
            systems.push_back(
                is_soc ? core::monolithic_soc("soc", query.node,
                                              query.module_area_mm2, query.quantity)
                       : core::split_system("alt", query.node, packaging,
                                            query.module_area_mm2, k,
                                            query.d2d_fraction, query.quantity));
            DesignOption option;
            option.packaging = packaging;
            option.chiplets = k;
            candidates.push_back(std::move(option));
        }
    }

    const std::vector<core::SystemCost> costs = actuary.evaluate_batch(systems);
    Recommendation out;
    out.options = std::move(candidates);
    for (std::size_t i = 0; i < out.options.size(); ++i) {
        out.options[i].re_per_unit = costs[i].re.total();
        out.options[i].nre_per_unit = costs[i].nre.total();
    }
    std::stable_sort(out.options.begin(), out.options.end(),
                     [](const DesignOption& a, const DesignOption& b) {
                         return a.total_per_unit() < b.total_per_unit();
                     });
    return out;
}

}  // namespace chiplet::explore
