// Stable identity for a StudySpec, used as the key of the study-result
// cache (explore/study_cache.h) and the serving layer.  Identity is
// defined over the *canonical* JSON of the spec: to_json(StudySpec)
// materialises every config field in a fixed order, so two specs that
// parse from differently-ordered (or differently-defaulted) documents
// hash identically exactly when they describe the same study.
//
// The hash is 64-bit FNV-1a over the compact canonical dump.  FNV is
// not collision-free; callers that key on the hash must verify the
// canonical string byte-for-byte on lookup (StudyCache does).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "explore/study.h"

namespace chiplet::explore {

/// 64-bit FNV-1a over raw bytes.  Deterministic across platforms and
/// process runs (no seed), so hashes are stable cache/wire identifiers.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// Deep copy with every object's keys in sorted order (arrays keep
/// their element order — it is significant).  Materialised config
/// fields already serialise in a fixed order; this exists for the raw
/// JSON carried verbatim in a spec (tech overrides), whose key order
/// still reflects the input file.
[[nodiscard]] JsonValue canonicalize(const JsonValue& v);

/// The compact dump of canonicalize(to_json(spec)): every config field
/// materialised, every object key ordered.  This string *is* the cache
/// identity; byte equality of canonical forms defines spec equality.
[[nodiscard]] std::string canonical_spec_json(const StudySpec& spec);

/// fnv1a64(canonical_spec_json(spec)).
[[nodiscard]] std::uint64_t spec_hash(const StudySpec& spec);

}  // namespace chiplet::explore
