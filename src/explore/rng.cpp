#include "explore/rng.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace chiplet::explore {

Rng::Rng(std::uint64_t seed) : state_(seed == 0 ? 0x9e3779b97f4a7c15ull : seed) {}

Rng Rng::stream(std::uint64_t seed, std::uint64_t index) {
    // splitmix64 over seed + index * golden-ratio: adjacent indices land
    // in unrelated regions of the state space.
    std::uint64_t z = seed + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return Rng(z);
}

std::uint64_t Rng::next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
}

double Rng::uniform() {
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    CHIPLET_EXPECTS(lo <= hi, "uniform bounds must be ordered");
    return lo + (hi - lo) * uniform();
}

double Rng::normal() {
    if (have_spare_) {
        have_spare_ = false;
        return spare_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    spare_ = radius * std::sin(angle);
    have_spare_ = true;
    return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
    CHIPLET_EXPECTS(stddev >= 0.0, "stddev must be non-negative");
    return mean + stddev * normal();
}

double Rng::triangular(double lo, double mode, double hi) {
    CHIPLET_EXPECTS(lo <= mode && mode <= hi, "triangular needs lo <= mode <= hi");
    if (lo == hi) return lo;
    const double u = uniform();
    const double cut = (mode - lo) / (hi - lo);
    if (u < cut) return lo + std::sqrt(u * (hi - lo) * (mode - lo));
    return hi - std::sqrt((1.0 - u) * (hi - lo) * (hi - mode));
}

double Rng::lognormal(double median, double sigma_log) {
    CHIPLET_EXPECTS(median > 0.0, "lognormal median must be positive");
    CHIPLET_EXPECTS(sigma_log >= 0.0, "sigma_log must be non-negative");
    return median * std::exp(sigma_log * normal());
}

}  // namespace chiplet::explore
