#include "util/math.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.h"

namespace chiplet {

std::uint64_t binomial(unsigned n, unsigned k) {
    if (k > n) return 0;
    if (k > n - k) k = n - k;
    std::uint64_t result = 1;
    for (unsigned i = 1; i <= k; ++i) {
        const std::uint64_t numerator = n - k + i;
        // result * numerator may overflow; detect before dividing.
        if (result > std::numeric_limits<std::uint64_t>::max() / numerator) {
            throw ParameterError("binomial(" + std::to_string(n) + ", " +
                                 std::to_string(k) + ") overflows uint64");
        }
        result = result * numerator / i;
    }
    return result;
}

std::uint64_t multichoose(unsigned n, unsigned k) {
    CHIPLET_EXPECTS(n > 0 || k == 0, "multichoose requires n > 0 for k > 0");
    if (k == 0) return 1;
    return binomial(n + k - 1, k);
}

std::uint64_t fsmc_system_count(unsigned n_chiplets, unsigned k_sockets) {
    CHIPLET_EXPECTS(n_chiplets > 0, "FSMC needs at least one chiplet type");
    std::uint64_t total = 0;
    for (unsigned i = 1; i <= k_sockets; ++i) total += multichoose(n_chiplets, i);
    return total;
}

bool almost_equal(double a, double b, double rel_tol, double abs_tol) {
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= abs_tol + rel_tol * scale;
}

double lerp(double a, double b, double t) { return a + (b - a) * t; }

double mean(const std::vector<double>& xs) {
    CHIPLET_EXPECTS(!xs.empty(), "mean of empty vector");
    return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
    CHIPLET_EXPECTS(!xs.empty(), "stddev of empty vector");
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double percentile(std::vector<double> xs, double pct) {
    CHIPLET_EXPECTS(!xs.empty(), "percentile of empty vector");
    CHIPLET_EXPECTS(pct >= 0.0 && pct <= 100.0, "percentile must be in [0, 100]");
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1) return xs.front();
    const double rank = pct / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, xs.size() - 1);
    return lerp(xs[lo], xs[hi], rank - static_cast<double>(lo));
}

}  // namespace chiplet
