// Fixed-size worker pool for the batch-evaluation engine.  The design
// target is deterministic data-parallel loops: `parallel_for(n, body)`
// invokes `body(i)` exactly once for every index in [0, n), each index
// owning its output slot, so results are independent of scheduling and
// bit-identical to a serial loop.
//
//   util::ThreadPool pool(8);
//   auto costs = pool.parallel_map<double>(systems.size(), [&](std::size_t i) {
//       return actuary.evaluate(systems[i]).total_per_unit();
//   });
//
// A process-wide pool (`ThreadPool::global()`) serves the exploration
// layer; its size defaults to the hardware concurrency and can be pinned
// with the CHIPLET_THREADS environment variable or `set_global_threads`.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace chiplet::util {

/// Fixed set of worker threads executing indexed loop bodies.
///
/// Guarantees:
///  - `body(i)` runs exactly once per index; the caller participates, so
///    a pool is never idle-blocked on its own submitter.
///  - Exceptions propagate: the exception thrown at the *lowest* failing
///    index is rethrown to the caller (deterministic under any schedule);
///    remaining indices still run to completion.
///  - A pool of size <= 1 — and any `parallel_for` issued from inside a
///    worker (nested parallelism) — degrades to an inline serial loop.
///  - The pool is reusable: back-to-back `parallel_for` calls recycle the
///    same workers.  Concurrent `parallel_for` calls from different
///    threads serialise on an internal submission lock.
class ThreadPool {
public:
    /// `threads == 0` asks for `std::thread::hardware_concurrency()`.
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Worker count (the submitting thread works too, so effective
    /// parallelism is size(), with one worker standing in for the caller).
    [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1u; }

    /// Invokes `body(i)` for every i in [0, n); blocks until all indices
    /// completed.  Rethrows the lowest-index exception, if any.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

    /// `parallel_for` collecting `fn(i)` into slot i of the result —
    /// output order always matches input order, regardless of schedule.
    template <typename T, typename Fn>
    [[nodiscard]] std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
        std::vector<T> out(n);
        parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /// The process-wide pool used by the exploration layer.  Sized from
    /// CHIPLET_THREADS when set, else the hardware concurrency.
    [[nodiscard]] static ThreadPool& global();

    /// Rebuilds the global pool with `threads` workers (0 = hardware
    /// concurrency).  Not safe while another thread is using the pool;
    /// intended for benchmarks and tests toggling serial vs parallel.
    static void set_global_threads(unsigned threads);

private:
    void worker_loop();
    void work_on_current_job();

    struct Job {
        std::size_t n = 0;
        const std::function<void(std::size_t)>* body = nullptr;
        std::size_t chunk = 1;      ///< indices claimed per lock acquisition
        std::size_t next = 0;       ///< next index to claim (under mutex_)
        std::size_t completed = 0;  ///< indices fully executed
        std::exception_ptr error;
        std::size_t error_index = 0;
    };

    std::mutex submit_mutex_;  ///< serialises concurrent parallel_for calls

    std::mutex mutex_;
    std::condition_variable work_cv_;  ///< wakes workers for a new job
    std::condition_variable done_cv_;  ///< wakes the submitter on completion
    Job job_;
    std::uint64_t generation_ = 0;  ///< bumped per submitted job
    bool stop_ = false;

    std::vector<std::thread> workers_;
};

}  // namespace chiplet::util
