#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>

namespace chiplet::util {

namespace {

// True while this thread is executing a parallel_for body (worker or
// submitter); nested parallel_for calls then run inline, which keeps
// nesting deadlock-free without a work-stealing scheduler.
thread_local bool t_in_parallel_region = false;

struct RegionGuard {
    RegionGuard() { t_in_parallel_region = true; }
    ~RegionGuard() { t_in_parallel_region = false; }
};

unsigned env_thread_override() {
    const char* env = std::getenv("CHIPLET_THREADS");
    if (env == nullptr || *env == '\0') return 0;
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed > 0 ? static_cast<unsigned>(parsed) : 0;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
    if (threads == 0) threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
    // The submitting thread participates, so threads-1 standing workers
    // give `threads`-way parallelism.
    workers_.reserve(threads - 1);
    try {
        for (unsigned i = 0; i + 1 < threads; ++i) {
            workers_.emplace_back([this] { worker_loop(); });
        }
    } catch (...) {
        // Thread creation can fail (EAGAIN on oversized requests).  The
        // destructor will not run for a half-built object, so shut the
        // already-started workers down here before rethrowing — a vector
        // of joinable threads would otherwise call std::terminate.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        work_cv_.notify_all();
        for (std::thread& worker : workers_) worker.join();
        throw;
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
    if (n == 0) return;
    if (workers_.empty() || t_in_parallel_region || n == 1) {
        // Serial fallback: index order is ascending, so the first failing
        // index throws first — matching the pool's exception contract.
        for (std::size_t i = 0; i < n; ++i) body(i);
        return;
    }

    std::lock_guard<std::mutex> submit(submit_mutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = Job{};
        job_.n = n;
        job_.body = &body;
        // Claim indices in batches: cheap enough per lock acquisition to
        // scale to micro-tasks, small enough (8 batches per worker) that
        // the tail stays balanced.
        job_.chunk = std::max<std::size_t>(1, n / (std::size_t{size()} * 8));
        ++generation_;
    }
    work_cv_.notify_all();

    work_on_current_job();

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return job_.completed == job_.n; });
    const std::exception_ptr error = job_.error;
    job_.body = nullptr;
    lock.unlock();
    if (error) std::rethrow_exception(error);
}

void ThreadPool::work_on_current_job() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (job_.next < job_.n) {
        const std::size_t begin = job_.next;
        const std::size_t end = std::min(begin + job_.chunk, job_.n);
        job_.next = end;
        const std::function<void(std::size_t)>* body = job_.body;
        lock.unlock();
        std::exception_ptr error;
        std::size_t error_index = 0;
        {
            RegionGuard region;
            for (std::size_t index = begin; index < end; ++index) {
                try {
                    (*body)(index);
                } catch (...) {
                    // Ascending loop: the first capture is the lowest
                    // failing index of this batch.
                    if (!error) {
                        error = std::current_exception();
                        error_index = index;
                    }
                }
            }
        }
        lock.lock();
        if (error && (!job_.error || error_index < job_.error_index)) {
            job_.error = error;
            job_.error_index = error_index;
        }
        job_.completed += end - begin;
        if (job_.completed == job_.n) done_cv_.notify_all();
    }
}

void ThreadPool::worker_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    // Start at generation 0 (never an active job) so a job submitted
    // before this worker first acquires the lock is still picked up.
    std::uint64_t seen_generation = 0;
    while (true) {
        work_cv_.wait(lock, [&] {
            return stop_ || (generation_ != seen_generation && job_.next < job_.n);
        });
        if (stop_) return;
        seen_generation = generation_;
        lock.unlock();
        work_on_current_job();
        lock.lock();
    }
}

namespace {

std::mutex& global_pool_mutex() {
    static std::mutex mutex;
    return mutex;
}

std::unique_ptr<ThreadPool>& global_pool_slot() {
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

}  // namespace

ThreadPool& ThreadPool::global() {
    std::lock_guard<std::mutex> lock(global_pool_mutex());
    auto& pool = global_pool_slot();
    if (!pool) pool = std::make_unique<ThreadPool>(env_thread_override());
    return *pool;
}

void ThreadPool::set_global_threads(unsigned threads) {
    std::lock_guard<std::mutex> lock(global_pool_mutex());
    global_pool_slot() = std::make_unique<ThreadPool>(threads);
}

}  // namespace chiplet::util
