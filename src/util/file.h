// Small file-system helpers for the persistence layer: whole-file
// reads, atomic writes, and directory listing.  Everything reports
// failure by return value instead of throwing — the cache store treats
// an unreadable or unwritable entry as a miss, never as a fatal error.
#pragma once

#include <string>
#include <vector>

namespace chiplet::util {

/// Reads the entire file into `out`.  Returns false (out untouched or
/// partially overwritten — do not use it) when the file cannot be
/// opened or read.
[[nodiscard]] bool read_file(const std::string& path, std::string& out);

/// Writes `data` to `path` atomically: the bytes land in a uniquely
/// named temporary in the same directory, are flushed, and the
/// temporary is rename(2)d over the target.  Readers therefore see
/// either the old complete file or the new complete file, never a
/// truncated mix — which is what makes two processes sharing one cache
/// directory safe (the last writer wins whole files).  Returns false on
/// any failure; the temporary is cleaned up best-effort.
[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     const std::string& data);

/// Creates `path` (and missing parents).  Returns false when the
/// directory cannot be created; an already-existing directory succeeds.
[[nodiscard]] bool ensure_directory(const std::string& path);

/// Names (not paths) of the regular files directly inside `path` whose
/// name ends with `suffix` (empty = all), sorted for determinism.
/// Missing or unreadable directories list as empty.
[[nodiscard]] std::vector<std::string> list_directory(
    const std::string& path, const std::string& suffix = "");

}  // namespace chiplet::util
