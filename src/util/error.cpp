#include "util/error.h"

#include <sstream>

namespace chiplet::detail {

void fail_expects(const char* condition, const char* file, int line,
                  const std::string& message) {
    std::ostringstream os;
    os << message << " [violated: " << condition << " at " << file << ':' << line
       << ']';
    throw ParameterError(os.str());
}

}  // namespace chiplet::detail
