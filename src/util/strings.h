// String formatting helpers used by the report renderers and benches.
#pragma once

#include <string>
#include <vector>

namespace chiplet {

/// Fixed-point formatting with the given number of decimals ("3.14").
[[nodiscard]] std::string format_fixed(double value, int decimals = 2);

/// Percent formatting: format_pct(0.347) == "34.7%".
[[nodiscard]] std::string format_pct(double fraction, int decimals = 1);

/// Human-readable money: 1234567 -> "$1.23M"; small values "$123.45".
[[nodiscard]] std::string format_money(double usd);

/// Human-readable quantity: 500000 -> "500k", 2000000 -> "2M".
[[nodiscard]] std::string format_quantity(double units);

/// Left/right pad `s` with spaces up to `width` (no-op when already wider).
[[nodiscard]] std::string pad_left(const std::string& s, std::size_t width);
[[nodiscard]] std::string pad_right(const std::string& s, std::size_t width);

/// Split on a separator character; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(const std::string& s, char sep);

/// Join with a separator string.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               const std::string& sep);

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string s);

/// Repeat a single character n times.
[[nodiscard]] std::string repeat(char c, std::size_t n);

}  // namespace chiplet
