#include "util/file.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace chiplet::util {

bool read_file(const std::string& path, std::string& out) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return false;
    out.clear();
    char chunk[65536];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            return false;
        }
        if (n == 0) break;
        out.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return true;
}

bool write_file_atomic(const std::string& path, const std::string& data) {
    // The temporary must be unique per (process, write): two servers
    // sharing a cache directory may persist the same entry concurrently,
    // and each must stage in its own file before the atomic rename.
    static std::atomic<std::uint64_t> counter{0};
    const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                            std::to_string(counter.fetch_add(1));

    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return false;

    std::size_t written = 0;
    while (written < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + written, data.size() - written);
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    // Flush the bytes before the rename publishes the name: a crash may
    // lose the entry (it is a cache) but must never publish a name whose
    // content is still in flight.
    if (::fsync(fd) != 0 || ::close(fd) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

bool ensure_directory(const std::string& path) {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) return false;
    return std::filesystem::is_directory(path, ec) && !ec;
}

std::vector<std::string> list_directory(const std::string& path,
                                        const std::string& suffix) {
    std::vector<std::string> names;
    std::error_code ec;
    std::filesystem::directory_iterator it(path, ec);
    if (ec) return names;
    for (const std::filesystem::directory_entry& entry : it) {
        std::error_code entry_ec;
        if (!entry.is_regular_file(entry_ec) || entry_ec) continue;
        std::string name = entry.path().filename().string();
        if (!suffix.empty()) {
            if (name.size() < suffix.size() ||
                name.compare(name.size() - suffix.size(), suffix.size(),
                             suffix) != 0) {
                continue;
            }
        }
        names.push_back(std::move(name));
    }
    std::sort(names.begin(), names.end());
    return names;
}

}  // namespace chiplet::util
