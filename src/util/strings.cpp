#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

namespace chiplet {

std::string format_fixed(double value, int decimals) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(decimals);
    os << value;
    return os.str();
}

std::string format_pct(double fraction, int decimals) {
    return format_fixed(fraction * 100.0, decimals) + "%";
}

std::string format_money(double usd) {
    const bool negative = usd < 0.0;
    double v = std::fabs(usd);
    std::string suffix;
    if (v >= 1e9) {
        v /= 1e9;
        suffix = "B";
    } else if (v >= 1e6) {
        v /= 1e6;
        suffix = "M";
    } else if (v >= 1e3) {
        v /= 1e3;
        suffix = "k";
    }
    std::string body = "$" + format_fixed(v, v >= 100 ? 0 : 2) + suffix;
    return negative ? "-" + body : body;
}

std::string format_quantity(double units) {
    double v = units;
    std::string suffix;
    if (v >= 1e9) {
        v /= 1e9;
        suffix = "B";
    } else if (v >= 1e6) {
        v /= 1e6;
        suffix = "M";
    } else if (v >= 1e3) {
        v /= 1e3;
        suffix = "k";
    }
    const bool integral = std::fabs(v - std::round(v)) < 1e-9;
    return format_fixed(v, integral ? 0 : 1) + suffix;
}

std::string pad_left(const std::string& s, std::size_t width) {
    if (s.size() >= width) return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
    if (s.size() >= width) return s;
    return s + std::string(width - s.size(), ' ');
}

std::vector<std::string> split(const std::string& s, char sep) {
    std::vector<std::string> out;
    std::string current;
    for (char c : s) {
        if (c == sep) {
            out.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    out.push_back(current);
    return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string to_lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

std::string repeat(char c, std::size_t n) { return std::string(n, c); }

}  // namespace chiplet
