#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/error.h"

namespace chiplet {
namespace {

bool needs_quoting(const std::string& field) {
    return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string escape(const std::string& field) {
    if (!needs_quoting(field)) return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"') out += "\"\"";
        else out.push_back(c);
    }
    out.push_back('"');
    return out;
}

void write_row(std::ostream& os, const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) os << ',';
        os << escape(fields[i]);
    }
    os << '\n';
}

}  // namespace

void CsvWriter::set_header(std::vector<std::string> columns) {
    CHIPLET_EXPECTS(rows_.empty(), "set_header must precede add_row");
    header_ = std::move(columns);
}

void CsvWriter::add_row(std::vector<std::string> fields) {
    if (!header_.empty()) {
        CHIPLET_EXPECTS(fields.size() == header_.size(),
                        "row width does not match header");
    }
    rows_.push_back(std::move(fields));
}

void CsvWriter::add_numeric_row(const std::vector<double>& values) {
    std::vector<std::string> fields;
    fields.reserve(values.size());
    for (double v : values) {
        std::ostringstream os;
        os.precision(6);
        os << v;
        fields.push_back(os.str());
    }
    add_row(std::move(fields));
}

void CsvWriter::write(std::ostream& os) const {
    if (!header_.empty()) write_row(os, header_);
    for (const auto& row : rows_) write_row(os, row);
}

void CsvWriter::save(const std::string& path) const {
    std::ofstream file(path);
    if (!file) throw Error("cannot open CSV output file: " + path);
    write(file);
    if (!file) throw Error("write failure on CSV output file: " + path);
}

std::string CsvWriter::str() const {
    std::ostringstream os;
    write(os);
    return os.str();
}

}  // namespace chiplet
