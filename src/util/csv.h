// Minimal CSV writer used to export figure data series from the benches.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace chiplet {

/// Builds a rectangular CSV document in memory and serialises it with
/// RFC-4180 quoting.  Rows are free-form; `add_row` accepts any mix of
/// strings and numbers pre-formatted by the caller.
class CsvWriter {
public:
    CsvWriter() = default;

    /// Sets the header row; must be called before the first add_row.
    void set_header(std::vector<std::string> columns);

    /// Appends a data row.  Throws ParameterError when a header exists and
    /// the field count does not match it.
    void add_row(std::vector<std::string> fields);

    /// Convenience: formats doubles with 6 significant digits.
    void add_numeric_row(const std::vector<double>& values);

    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
    [[nodiscard]] std::size_t column_count() const { return header_.size(); }

    /// Serialises header + rows; fields containing comma/quote/newline are
    /// quoted and embedded quotes doubled.
    void write(std::ostream& os) const;

    /// Writes to a file; throws Error on I/O failure.
    void save(const std::string& path) const;

    /// Full document as a string (mainly for tests).
    [[nodiscard]] std::string str() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace chiplet
