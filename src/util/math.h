// Small numeric helpers shared across the library: combinatorics for the
// FSMC reuse-scheme enumeration, approximate comparison, and interpolation.
#pragma once

#include <cstdint>
#include <vector>

namespace chiplet {

/// Binomial coefficient C(n, k) computed in integer arithmetic.
/// Throws ParameterError on overflow of uint64_t.
[[nodiscard]] std::uint64_t binomial(unsigned n, unsigned k);

/// Number of multisets of size k drawn from n distinct items:
/// C(n + k - 1, k).  This is the count of distinct chiplet collocations
/// that fill exactly k sockets from n chiplet types (paper Sec. 5.3).
[[nodiscard]] std::uint64_t multichoose(unsigned n, unsigned k);

/// Paper Sec. 5.3 system count: sum over i = 1..k of C(n + i - 1, i),
/// i.e. all ways to populate *up to* k identical sockets with n chiplet
/// types, at least one socket filled.
[[nodiscard]] std::uint64_t fsmc_system_count(unsigned n_chiplets, unsigned k_sockets);

/// True when |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
[[nodiscard]] bool almost_equal(double a, double b, double rel_tol = 1e-9,
                                double abs_tol = 1e-12);

/// Linear interpolation between a and b; t outside [0,1] extrapolates.
[[nodiscard]] double lerp(double a, double b, double t);

/// Arithmetic mean of a non-empty vector.
[[nodiscard]] double mean(const std::vector<double>& xs);

/// Population standard deviation of a non-empty vector.
[[nodiscard]] double stddev(const std::vector<double>& xs);

/// Percentile (0..100) by linear interpolation on the sorted copy.
[[nodiscard]] double percentile(std::vector<double> xs, double pct);

}  // namespace chiplet
