// Error types and lightweight contract checks for the Chiplet Actuary
// library.  Exceptions are reserved for parameter/contract violations;
// ordinary model evaluation never throws.
#pragma once

#include <stdexcept>
#include <string>

namespace chiplet {

/// Base class for all errors raised by the library.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A model parameter is outside its physically meaningful domain
/// (e.g. negative area, yield outside (0, 1]).
class ParameterError : public Error {
public:
    explicit ParameterError(const std::string& what) : Error(what) {}
};

/// A named entity (process node, packaging technology, module, ...) was
/// looked up but does not exist in the containing registry.
class LookupError : public Error {
public:
    explicit LookupError(const std::string& what) : Error(what) {}
};

/// Malformed input while parsing an external file (JSON tech library).
class ParseError : public Error {
public:
    explicit ParseError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void fail_expects(const char* condition, const char* file, int line,
                               const std::string& message);
}  // namespace detail

/// Contract check: throws ParameterError when `cond` is false.
/// Use for public API preconditions; cheap enough to keep in release builds.
#define CHIPLET_EXPECTS(cond, message)                                            \
    do {                                                                          \
        if (!(cond)) {                                                            \
            ::chiplet::detail::fail_expects(#cond, __FILE__, __LINE__, (message)); \
        }                                                                         \
    } while (false)

}  // namespace chiplet
