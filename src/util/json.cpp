#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace chiplet {

JsonValue JsonValue::object() {
    JsonValue v;
    v.value_ = std::make_shared<ObjectRep>();
    return v;
}

JsonValue JsonValue::array() {
    JsonValue v;
    v.value_ = JsonArray{};
    return v;
}

JsonValue::Type JsonValue::type() const {
    switch (value_.index()) {
        case 0: return Type::null;
        case 1: return Type::boolean;
        case 2: return Type::number;
        case 3: return Type::string;
        case 4: return Type::array;
        default: return Type::object;
    }
}

bool JsonValue::as_bool() const {
    if (!is_bool()) throw ParseError("JSON value is not a boolean");
    return std::get<bool>(value_);
}

double JsonValue::as_number() const {
    if (!is_number()) throw ParseError("JSON value is not a number");
    return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
    if (!is_string()) throw ParseError("JSON value is not a string");
    return std::get<std::string>(value_);
}

const JsonArray& JsonValue::as_array() const {
    if (!is_array()) throw ParseError("JSON value is not an array");
    return std::get<JsonArray>(value_);
}

JsonArray& JsonValue::as_array() {
    if (!is_array()) throw ParseError("JSON value is not an array");
    return std::get<JsonArray>(value_);
}

JsonValue::ObjectRep& JsonValue::object_rep() {
    if (!is_object()) throw ParseError("JSON value is not an object");
    return *std::get<std::shared_ptr<ObjectRep>>(value_);
}

const JsonValue::ObjectRep& JsonValue::object_rep() const {
    if (!is_object()) throw ParseError("JSON value is not an object");
    return *std::get<std::shared_ptr<ObjectRep>>(value_);
}

void JsonValue::set(const std::string& key, JsonValue value) {
    if (is_null()) value_ = std::make_shared<ObjectRep>();
    auto& rep = object_rep();
    if (rep.entries.find(key) == rep.entries.end()) rep.order.push_back(key);
    rep.entries[key] = std::move(value);
}

bool JsonValue::contains(const std::string& key) const {
    if (!is_object()) return false;
    return object_rep().entries.count(key) > 0;
}

const JsonValue& JsonValue::at(const std::string& key) const {
    const auto& rep = object_rep();
    auto it = rep.entries.find(key);
    if (it == rep.entries.end()) throw LookupError("missing JSON key: " + key);
    return it->second;
}

JsonValue& JsonValue::at(const std::string& key) {
    auto& rep = object_rep();
    auto it = rep.entries.find(key);
    if (it == rep.entries.end()) throw LookupError("missing JSON key: " + key);
    return it->second;
}

double JsonValue::get_or(const std::string& key, double fallback) const {
    return contains(key) ? at(key).as_number() : fallback;
}

std::string JsonValue::get_or(const std::string& key,
                              const std::string& fallback) const {
    return contains(key) ? at(key).as_string() : fallback;
}

bool JsonValue::get_or(const std::string& key, bool fallback) const {
    return contains(key) ? at(key).as_bool() : fallback;
}

const std::vector<std::string>& JsonValue::keys() const {
    return object_rep().order;
}

void JsonValue::push_back(JsonValue value) {
    if (is_null()) value_ = JsonArray{};
    as_array().push_back(std::move(value));
}

namespace {

void dump_string(std::string& out, const std::string& s) {
    out.push_back('"');
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
}

void dump_number(std::string& out, double d) {
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
        out += std::to_string(static_cast<long long>(d));
        return;
    }
    std::ostringstream os;
    os.precision(12);
    os << d;
    out += os.str();
}

}  // namespace

void JsonValue::dump_impl(std::string& out, int indent, int depth) const {
    const std::string pad(indent > 0 ? static_cast<std::size_t>(indent * (depth + 1)) : 0, ' ');
    const std::string closing_pad(indent > 0 ? static_cast<std::size_t>(indent * depth) : 0, ' ');
    const char* nl = indent > 0 ? "\n" : "";
    switch (type()) {
        case Type::null: out += "null"; break;
        case Type::boolean: out += as_bool() ? "true" : "false"; break;
        case Type::number: dump_number(out, as_number()); break;
        case Type::string: dump_string(out, as_string()); break;
        case Type::array: {
            const auto& arr = as_array();
            if (arr.empty()) {
                out += "[]";
                break;
            }
            out += "[";
            out += nl;
            for (std::size_t i = 0; i < arr.size(); ++i) {
                out += pad;
                arr[i].dump_impl(out, indent, depth + 1);
                if (i + 1 < arr.size()) out += ",";
                out += nl;
            }
            out += closing_pad + "]";
            break;
        }
        case Type::object: {
            const auto& rep = object_rep();
            if (rep.order.empty()) {
                out += "{}";
                break;
            }
            out += "{";
            out += nl;
            for (std::size_t i = 0; i < rep.order.size(); ++i) {
                out += pad;
                dump_string(out, rep.order[i]);
                out += indent > 0 ? ": " : ":";
                rep.entries.at(rep.order[i]).dump_impl(out, indent, depth + 1);
                if (i + 1 < rep.order.size()) out += ",";
                out += nl;
            }
            out += closing_pad + "}";
            break;
        }
    }
}

std::string JsonValue::dump(int indent) const {
    std::string out;
    dump_impl(out, indent, 0);
    return out;
}

namespace {

/// Recursive-descent JSON parser with line/column diagnostics.
class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    JsonValue parse_document() {
        skip_ws();
        JsonValue v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after JSON document");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& message) const {
        std::size_t line = 1;
        std::size_t col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw ParseError("JSON parse error at line " + std::to_string(line) +
                         ", column " + std::to_string(col) + ": " + message);
    }

    [[nodiscard]] char peek() const {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    char next() {
        const char c = peek();
        ++pos_;
        return c;
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
            else break;
        }
    }

    void expect(char c) {
        if (next() != c) {
            --pos_;
            fail(std::string("expected '") + c + "'");
        }
    }

    void expect_literal(const char* literal) {
        for (const char* p = literal; *p != '\0'; ++p) expect(*p);
    }

    JsonValue parse_value() {
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return JsonValue(parse_string());
            case 't': expect_literal("true"); return JsonValue(true);
            case 'f': expect_literal("false"); return JsonValue(false);
            case 'n': expect_literal("null"); return JsonValue(nullptr);
            default: return parse_number();
        }
    }

    JsonValue parse_object() {
        expect('{');
        JsonValue obj = JsonValue::object();
        skip_ws();
        if (peek() == '}') {
            next();
            return obj;
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            skip_ws();
            obj.set(key, parse_value());
            skip_ws();
            const char c = next();
            if (c == '}') return obj;
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}' in object");
            }
        }
    }

    JsonValue parse_array() {
        expect('[');
        JsonValue arr = JsonValue::array();
        skip_ws();
        if (peek() == ']') {
            next();
            return arr;
        }
        while (true) {
            skip_ws();
            arr.push_back(parse_value());
            skip_ws();
            const char c = next();
            if (c == ']') return arr;
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']' in array");
            }
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            const char c = next();
            if (c == '"') return out;
            if (c == '\\') {
                const char esc = next();
                switch (esc) {
                    case '"': out.push_back('"'); break;
                    case '\\': out.push_back('\\'); break;
                    case '/': out.push_back('/'); break;
                    case 'b': out.push_back('\b'); break;
                    case 'f': out.push_back('\f'); break;
                    case 'n': out.push_back('\n'); break;
                    case 'r': out.push_back('\r'); break;
                    case 't': out.push_back('\t'); break;
                    case 'u': {
                        unsigned code = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = next();
                            code <<= 4;
                            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
                            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
                            else {
                                --pos_;
                                fail("invalid \\u escape digit");
                            }
                        }
                        if (code < 0x80) {
                            out.push_back(static_cast<char>(code));
                        } else if (code < 0x800) {
                            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                        } else {
                            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                        }
                        break;
                    }
                    default:
                        --pos_;
                        fail("invalid escape sequence");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                --pos_;
                fail("unescaped control character in string");
            } else {
                out.push_back(c);
            }
        }
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') next();
        if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("digit required after decimal point");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("digit required in exponent");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        try {
            return JsonValue(std::stod(text_.substr(start, pos_ - start)));
        } catch (const std::out_of_range&) {
            // e.g. "1e99999": grammatically valid but unrepresentable.
            pos_ = start;
            fail("number out of double range");
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
    return Parser(text).parse_document();
}

JsonValue JsonValue::load_file(const std::string& path) {
    std::ifstream file(path);
    if (!file) throw Error("cannot open JSON file: " + path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return parse(buffer.str());
}

void JsonValue::save_file(const std::string& path, int indent) const {
    std::ofstream file(path);
    if (!file) throw Error("cannot open JSON output file: " + path);
    file << dump(indent) << '\n';
    if (!file) throw Error("write failure on JSON output file: " + path);
}

}  // namespace chiplet
