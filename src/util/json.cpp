#include "util/json.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/error.h"

namespace chiplet {

JsonValue JsonValue::object() {
    JsonValue v;
    v.value_ = std::make_shared<ObjectRep>();
    return v;
}

JsonValue JsonValue::array() {
    JsonValue v;
    v.value_ = JsonArray{};
    return v;
}

JsonValue::Type JsonValue::type() const {
    switch (value_.index()) {
        case 0: return Type::null;
        case 1: return Type::boolean;
        case 2: return Type::number;
        case 3: return Type::string;
        case 4: return Type::array;
        default: return Type::object;
    }
}

bool JsonValue::as_bool() const {
    if (!is_bool()) throw ParseError("JSON value is not a boolean");
    return std::get<bool>(value_);
}

double JsonValue::as_number() const {
    if (!is_number()) throw ParseError("JSON value is not a number");
    return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
    if (!is_string()) throw ParseError("JSON value is not a string");
    return std::get<std::string>(value_);
}

const JsonArray& JsonValue::as_array() const {
    if (!is_array()) throw ParseError("JSON value is not an array");
    return std::get<JsonArray>(value_);
}

JsonArray& JsonValue::as_array() {
    if (!is_array()) throw ParseError("JSON value is not an array");
    return std::get<JsonArray>(value_);
}

JsonValue::ObjectRep& JsonValue::object_rep() {
    if (!is_object()) throw ParseError("JSON value is not an object");
    return *std::get<std::shared_ptr<ObjectRep>>(value_);
}

const JsonValue::ObjectRep& JsonValue::object_rep() const {
    if (!is_object()) throw ParseError("JSON value is not an object");
    return *std::get<std::shared_ptr<ObjectRep>>(value_);
}

void JsonValue::set(const std::string& key, JsonValue value) {
    if (is_null()) value_ = std::make_shared<ObjectRep>();
    auto& rep = object_rep();
    if (rep.entries.find(key) == rep.entries.end()) rep.order.push_back(key);
    rep.entries[key] = std::move(value);
}

bool JsonValue::contains(const std::string& key) const {
    if (!is_object()) return false;
    return object_rep().entries.count(key) > 0;
}

const JsonValue& JsonValue::at(const std::string& key) const {
    const auto& rep = object_rep();
    auto it = rep.entries.find(key);
    if (it == rep.entries.end()) throw LookupError("missing JSON key: " + key);
    return it->second;
}

JsonValue& JsonValue::at(const std::string& key) {
    auto& rep = object_rep();
    auto it = rep.entries.find(key);
    if (it == rep.entries.end()) throw LookupError("missing JSON key: " + key);
    return it->second;
}

double JsonValue::get_or(const std::string& key, double fallback) const {
    return contains(key) ? at(key).as_number() : fallback;
}

std::string JsonValue::get_or(const std::string& key,
                              const std::string& fallback) const {
    return contains(key) ? at(key).as_string() : fallback;
}

bool JsonValue::get_or(const std::string& key, bool fallback) const {
    return contains(key) ? at(key).as_bool() : fallback;
}

const std::vector<std::string>& JsonValue::keys() const {
    return object_rep().order;
}

void JsonValue::push_back(JsonValue value) {
    if (is_null()) value_ = JsonArray{};
    as_array().push_back(std::move(value));
}

namespace {

void dump_string(std::string& out, const std::string& s) {
    out.push_back('"');
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
}

void dump_number(std::string& out, double d) {
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
        out += std::to_string(static_cast<long long>(d));
        return;
    }
    std::ostringstream os;
    os.precision(12);
    os << d;
    out += os.str();
}

}  // namespace

void JsonValue::dump_impl(std::string& out, int indent, int depth) const {
    const std::string pad(indent > 0 ? static_cast<std::size_t>(indent * (depth + 1)) : 0, ' ');
    const std::string closing_pad(indent > 0 ? static_cast<std::size_t>(indent * depth) : 0, ' ');
    const char* nl = indent > 0 ? "\n" : "";
    switch (type()) {
        case Type::null: out += "null"; break;
        case Type::boolean: out += as_bool() ? "true" : "false"; break;
        case Type::number: dump_number(out, as_number()); break;
        case Type::string: dump_string(out, as_string()); break;
        case Type::array: {
            const auto& arr = as_array();
            if (arr.empty()) {
                out += "[]";
                break;
            }
            out += "[";
            out += nl;
            for (std::size_t i = 0; i < arr.size(); ++i) {
                out += pad;
                arr[i].dump_impl(out, indent, depth + 1);
                if (i + 1 < arr.size()) out += ",";
                out += nl;
            }
            out += closing_pad + "]";
            break;
        }
        case Type::object: {
            const auto& rep = object_rep();
            if (rep.order.empty()) {
                out += "{}";
                break;
            }
            out += "{";
            out += nl;
            for (std::size_t i = 0; i < rep.order.size(); ++i) {
                out += pad;
                dump_string(out, rep.order[i]);
                out += indent > 0 ? ": " : ":";
                rep.entries.at(rep.order[i]).dump_impl(out, indent, depth + 1);
                if (i + 1 < rep.order.size()) out += ",";
                out += nl;
            }
            out += closing_pad + "}";
            break;
        }
    }
}

std::string JsonValue::dump(int indent) const {
    std::string out;
    dump_impl(out, indent, 0);
    return out;
}

namespace {

/// Recursive-descent JSON parser with line/column diagnostics.
class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    JsonValue parse_document() {
        skip_ws();
        JsonValue v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after JSON document");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& message) const {
        std::size_t line = 1;
        std::size_t col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw ParseError("JSON parse error at line " + std::to_string(line) +
                         ", column " + std::to_string(col) + ": " + message);
    }

    [[nodiscard]] char peek() const {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    char next() {
        const char c = peek();
        ++pos_;
        return c;
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
            else break;
        }
    }

    void expect(char c) {
        if (next() != c) {
            --pos_;
            fail(std::string("expected '") + c + "'");
        }
    }

    void expect_literal(const char* literal) {
        for (const char* p = literal; *p != '\0'; ++p) expect(*p);
    }

    JsonValue parse_value() {
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return JsonValue(parse_string());
            case 't': expect_literal("true"); return JsonValue(true);
            case 'f': expect_literal("false"); return JsonValue(false);
            case 'n': expect_literal("null"); return JsonValue(nullptr);
            default: return parse_number();
        }
    }

    JsonValue parse_object() {
        expect('{');
        JsonValue obj = JsonValue::object();
        skip_ws();
        if (peek() == '}') {
            next();
            return obj;
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            skip_ws();
            obj.set(key, parse_value());
            skip_ws();
            const char c = next();
            if (c == '}') return obj;
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}' in object");
            }
        }
    }

    JsonValue parse_array() {
        expect('[');
        JsonValue arr = JsonValue::array();
        skip_ws();
        if (peek() == ']') {
            next();
            return arr;
        }
        while (true) {
            skip_ws();
            arr.push_back(parse_value());
            skip_ws();
            const char c = next();
            if (c == ']') return arr;
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']' in array");
            }
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            const char c = next();
            if (c == '"') return out;
            if (c == '\\') {
                const char esc = next();
                switch (esc) {
                    case '"': out.push_back('"'); break;
                    case '\\': out.push_back('\\'); break;
                    case '/': out.push_back('/'); break;
                    case 'b': out.push_back('\b'); break;
                    case 'f': out.push_back('\f'); break;
                    case 'n': out.push_back('\n'); break;
                    case 'r': out.push_back('\r'); break;
                    case 't': out.push_back('\t'); break;
                    case 'u': {
                        unsigned code = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = next();
                            code <<= 4;
                            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
                            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
                            else {
                                --pos_;
                                fail("invalid \\u escape digit");
                            }
                        }
                        if (code < 0x80) {
                            out.push_back(static_cast<char>(code));
                        } else if (code < 0x800) {
                            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                        } else {
                            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                        }
                        break;
                    }
                    default:
                        --pos_;
                        fail("invalid escape sequence");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                --pos_;
                fail("unescaped control character in string");
            } else {
                out.push_back(c);
            }
        }
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') next();
        if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("digit required after decimal point");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("digit required in exponent");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        try {
            return JsonValue(std::stod(text_.substr(start, pos_ - start)));
        } catch (const std::out_of_range&) {
            // e.g. "1e99999": grammatically valid but unrepresentable.
            pos_ = start;
            fail("number out of double range");
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
    return Parser(text).parse_document();
}

JsonValue JsonValue::load_file(const std::string& path) {
    std::ifstream file(path);
    if (!file) throw Error("cannot open JSON file: " + path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return parse(buffer.str());
}

void JsonValue::save_file(const std::string& path, int indent) const {
    std::ofstream file(path);
    if (!file) throw Error("cannot open JSON output file: " + path);
    file << dump(indent) << '\n';
    if (!file) throw Error("write failure on JSON output file: " + path);
}

// ---- JsonReader -------------------------------------------------------------

const char* type_name(JsonValue::Type type) {
    switch (type) {
        case JsonValue::Type::null: return "null";
        case JsonValue::Type::boolean: return "boolean";
        case JsonValue::Type::number: return "number";
        case JsonValue::Type::string: return "string";
        case JsonValue::Type::array: return "array";
        case JsonValue::Type::object: return "object";
    }
    return "unknown";
}

JsonReader::JsonReader(const JsonValue& value, std::string context)
    : value_(value), context_(std::move(context)) {
    if (!value_.is_object()) {
        throw ParseError(context_ + ": expected object, got " +
                         type_name(value_.type()));
    }
}

bool JsonReader::has(const std::string& key) const { return value_.contains(key); }

void JsonReader::fail(const std::string& key, const std::string& what) const {
    throw ParseError(context_ + ": key '" + key + "': " + what);
}

const JsonValue& JsonReader::require(const std::string& key) const {
    if (!value_.contains(key)) {
        throw ParseError(context_ + ": required key '" + key + "' is missing");
    }
    return value_.at(key);
}

std::string JsonReader::require_string(const std::string& key) const {
    const JsonValue& v = require(key);
    if (!v.is_string()) fail(key, std::string("expected string, got ") + type_name(v.type()));
    return v.as_string();
}

double JsonReader::require_number(const std::string& key) const {
    const JsonValue& v = require(key);
    if (!v.is_number()) fail(key, std::string("expected number, got ") + type_name(v.type()));
    return v.as_number();
}

const JsonArray& JsonReader::require_array(const std::string& key) const {
    const JsonValue& v = require(key);
    if (!v.is_array()) fail(key, std::string("expected array, got ") + type_name(v.type()));
    return v.as_array();
}

double JsonReader::integral_number(const std::string& key, const JsonValue& v) const {
    if (!v.is_number()) fail(key, std::string("expected number, got ") + type_name(v.type()));
    const double d = v.as_number();
    // Range-check in the double domain before any integer cast: casting
    // an out-of-range double is undefined behaviour, not saturation.
    if (d < 0.0 || d >= 18446744073709551616.0 /* 2^64 */ ||
        std::trunc(d) != d) {
        fail(key, "expected a non-negative integer");
    }
    return d;
}

void JsonReader::optional(const std::string& key, double& out) const {
    if (has(key)) out = require_number(key);
}

void JsonReader::optional(const std::string& key, std::string& out) const {
    if (has(key)) out = require_string(key);
}

void JsonReader::optional(const std::string& key, bool& out) const {
    if (!has(key)) return;
    const JsonValue& v = value_.at(key);
    if (!v.is_bool()) fail(key, std::string("expected boolean, got ") + type_name(v.type()));
    out = v.as_bool();
}

void JsonReader::optional(const std::string& key, unsigned& out) const {
    if (!has(key)) return;
    const double d = integral_number(key, value_.at(key));
    if (d > static_cast<double>(std::numeric_limits<unsigned>::max())) {
        fail(key, "value does not fit in an unsigned int");
    }
    out = static_cast<unsigned>(d);
}

void JsonReader::optional(const std::string& key, std::uint64_t& out) const {
    if (has(key)) out = static_cast<std::uint64_t>(integral_number(key, value_.at(key)));
}

void JsonReader::optional(const std::string& key, std::vector<double>& out) const {
    if (!has(key)) return;
    const JsonArray& array = require_array(key);
    out.clear();
    for (const JsonValue& v : array) {
        if (!v.is_number()) fail(key, "expected an array of numbers");
        out.push_back(v.as_number());
    }
}

void JsonReader::optional(const std::string& key,
                          std::vector<std::string>& out) const {
    if (!has(key)) return;
    const JsonArray& array = require_array(key);
    out.clear();
    for (const JsonValue& v : array) {
        if (!v.is_string()) fail(key, "expected an array of strings");
        out.push_back(v.as_string());
    }
}

void JsonReader::optional(const std::string& key, std::vector<unsigned>& out) const {
    if (!has(key)) return;
    const JsonArray& array = require_array(key);
    out.clear();
    for (const JsonValue& v : array) {
        const double d = integral_number(key, v);
        if (d > static_cast<double>(std::numeric_limits<unsigned>::max())) {
            fail(key, "value does not fit in an unsigned int");
        }
        out.push_back(static_cast<unsigned>(d));
    }
}

// ---- json_diff --------------------------------------------------------------

bool parse_full_number(const std::string& s, double& out) {
    if (s.empty()) return false;
    char* end = nullptr;
    errno = 0;
    out = std::strtod(s.c_str(), &end);
    return errno == 0 && end == s.c_str() + s.size();
}

std::string exact_number_string(double d) {
    char buf[64];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
    CHIPLET_EXPECTS(ec == std::errc(), "number does not format");
    return std::string(buf, ptr);
}

namespace {

bool numbers_close(double a, double b, double tolerance) {
    const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
    return std::fabs(a - b) <= tolerance * scale;
}

std::string diff_at(const std::string& path, const JsonValue& a,
                    const JsonValue& b, const JsonDiffOptions& options) {
    const auto here = [&path] { return path.empty() ? "$" : path; };
    if (a.type() != b.type()) {
        // Numeric strings vs numbers stay type-strict: a schema change
        // should show up even when the values happen to match.
        return here() + ": type " + type_name(a.type()) + " vs " +
               type_name(b.type());
    }
    switch (a.type()) {
        case JsonValue::Type::null: return "";
        case JsonValue::Type::boolean:
            return a.as_bool() == b.as_bool()
                       ? ""
                       : here() + ": " + a.dump() + " vs " + b.dump();
        case JsonValue::Type::number:
            return numbers_close(a.as_number(), b.as_number(), options.tolerance)
                       ? ""
                       : here() + ": " + a.dump() + " vs " + b.dump();
        case JsonValue::Type::string: {
            if (a.as_string() == b.as_string()) return "";
            double na = 0.0;
            double nb = 0.0;
            if (options.numeric_strings && parse_full_number(a.as_string(), na) &&
                parse_full_number(b.as_string(), nb) &&
                numbers_close(na, nb, options.tolerance)) {
                return "";
            }
            return here() + ": \"" + a.as_string() + "\" vs \"" + b.as_string() +
                   "\"";
        }
        case JsonValue::Type::array: {
            const JsonArray& aa = a.as_array();
            const JsonArray& ba = b.as_array();
            if (aa.size() != ba.size()) {
                return here() + ": array length " + std::to_string(aa.size()) +
                       " vs " + std::to_string(ba.size());
            }
            for (std::size_t i = 0; i < aa.size(); ++i) {
                std::string d = diff_at(path + "[" + std::to_string(i) + "]",
                                        aa[i], ba[i], options);
                if (!d.empty()) return d;
            }
            return "";
        }
        case JsonValue::Type::object: {
            const auto ignored = [&options](const std::string& key) {
                for (const std::string& k : options.ignore_keys) {
                    if (k == key) return true;
                }
                return false;
            };
            for (const std::string& key : a.keys()) {
                if (ignored(key)) continue;
                if (!b.contains(key)) {
                    return here() + ": key '" + key + "' only on the left";
                }
            }
            for (const std::string& key : b.keys()) {
                if (ignored(key)) continue;
                if (!a.contains(key)) {
                    return here() + ": key '" + key + "' only on the right";
                }
                std::string d =
                    diff_at(path.empty() ? key : path + "." + key, a.at(key),
                            b.at(key), options);
                if (!d.empty()) return d;
            }
            return "";
        }
    }
    return "";
}

}  // namespace

std::string json_diff(const JsonValue& a, const JsonValue& b,
                      const JsonDiffOptions& options) {
    return diff_at("", a, b, options);
}

std::string JsonReader::element_context(const std::string& key,
                                        std::size_t index) const {
    return context_ + "." + key + "[" + std::to_string(index) + "]";
}

}  // namespace chiplet
