// Minimal JSON value model, parser and serialiser.  Used for loading
// user-supplied technology libraries and exporting model results.  Supports
// the full JSON grammar except for \u escapes beyond Latin-1; numbers are
// stored as double (sufficient for cost-model parameters).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace chiplet {

class JsonValue;

/// Order-preserving object representation: JSON keys keep file order so a
/// saved tech library round-trips readably.
using JsonArray = std::vector<JsonValue>;

/// JSON document node.  Value-semantic; copies are deep.
class JsonValue {
public:
    enum class Type { null, boolean, number, string, array, object };

    /// Constructs null.
    JsonValue() = default;
    JsonValue(std::nullptr_t) {}
    JsonValue(bool b) : value_(b) {}
    JsonValue(double d) : value_(d) {}
    JsonValue(int i) : value_(static_cast<double>(i)) {}
    JsonValue(unsigned u) : value_(static_cast<double>(u)) {}
    JsonValue(const char* s) : value_(std::string(s)) {}
    JsonValue(std::string s) : value_(std::move(s)) {}
    JsonValue(JsonArray a) : value_(std::move(a)) {}

    /// Creates an empty object.
    [[nodiscard]] static JsonValue object();
    /// Creates an empty array.
    [[nodiscard]] static JsonValue array();

    [[nodiscard]] Type type() const;
    [[nodiscard]] bool is_null() const { return type() == Type::null; }
    [[nodiscard]] bool is_bool() const { return type() == Type::boolean; }
    [[nodiscard]] bool is_number() const { return type() == Type::number; }
    [[nodiscard]] bool is_string() const { return type() == Type::string; }
    [[nodiscard]] bool is_array() const { return type() == Type::array; }
    [[nodiscard]] bool is_object() const { return type() == Type::object; }

    /// Typed accessors; throw ParseError on type mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const JsonArray& as_array() const;
    [[nodiscard]] JsonArray& as_array();

    /// Object access.  `set` inserts or overwrites; `at` throws LookupError
    /// for missing keys; `get_or` returns a fallback.
    void set(const std::string& key, JsonValue value);
    [[nodiscard]] bool contains(const std::string& key) const;
    [[nodiscard]] const JsonValue& at(const std::string& key) const;
    [[nodiscard]] JsonValue& at(const std::string& key);
    [[nodiscard]] double get_or(const std::string& key, double fallback) const;
    [[nodiscard]] std::string get_or(const std::string& key,
                                     const std::string& fallback) const;
    [[nodiscard]] bool get_or(const std::string& key, bool fallback) const;
    [[nodiscard]] const std::vector<std::string>& keys() const;

    /// Array append.
    void push_back(JsonValue value);

    /// Serialises; indent > 0 pretty-prints with that many spaces per level.
    [[nodiscard]] std::string dump(int indent = 0) const;

    /// Parses a complete JSON document; throws ParseError with a
    /// line/column diagnostic on malformed input.
    [[nodiscard]] static JsonValue parse(const std::string& text);

    /// Reads and parses a file; throws Error when unreadable.
    [[nodiscard]] static JsonValue load_file(const std::string& path);

    /// Writes `dump(indent)` to a file.
    void save_file(const std::string& path, int indent = 2) const;

private:
    struct ObjectRep {
        std::vector<std::string> order;
        std::map<std::string, JsonValue> entries;
    };

    // shared_ptr keeps JsonValue copyable while ObjectRep stays incomplete
    // in the variant; deep copy happens explicitly in set()/parse paths.
    using Storage = std::variant<std::monostate, bool, double, std::string,
                                 JsonArray, std::shared_ptr<ObjectRep>>;

    void dump_impl(std::string& out, int indent, int depth) const;
    [[nodiscard]] ObjectRep& object_rep();
    [[nodiscard]] const ObjectRep& object_rep() const;

    Storage value_;
};

}  // namespace chiplet
