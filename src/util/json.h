// Minimal JSON value model, parser and serialiser.  Used for loading
// user-supplied technology libraries and exporting model results.  Supports
// the full JSON grammar except for \u escapes beyond Latin-1; numbers are
// stored as double (sufficient for cost-model parameters).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace chiplet {

class JsonValue;

/// Order-preserving object representation: JSON keys keep file order so a
/// saved tech library round-trips readably.
using JsonArray = std::vector<JsonValue>;

/// JSON document node.  Value-semantic; copies are deep.
class JsonValue {
public:
    enum class Type { null, boolean, number, string, array, object };

    /// Constructs null.
    JsonValue() = default;
    JsonValue(std::nullptr_t) {}
    JsonValue(bool b) : value_(b) {}
    JsonValue(double d) : value_(d) {}
    JsonValue(int i) : value_(static_cast<double>(i)) {}
    JsonValue(unsigned u) : value_(static_cast<double>(u)) {}
    JsonValue(const char* s) : value_(std::string(s)) {}
    JsonValue(std::string s) : value_(std::move(s)) {}
    JsonValue(JsonArray a) : value_(std::move(a)) {}

    /// Creates an empty object.
    [[nodiscard]] static JsonValue object();
    /// Creates an empty array.
    [[nodiscard]] static JsonValue array();

    [[nodiscard]] Type type() const;
    [[nodiscard]] bool is_null() const { return type() == Type::null; }
    [[nodiscard]] bool is_bool() const { return type() == Type::boolean; }
    [[nodiscard]] bool is_number() const { return type() == Type::number; }
    [[nodiscard]] bool is_string() const { return type() == Type::string; }
    [[nodiscard]] bool is_array() const { return type() == Type::array; }
    [[nodiscard]] bool is_object() const { return type() == Type::object; }

    /// Typed accessors; throw ParseError on type mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const JsonArray& as_array() const;
    [[nodiscard]] JsonArray& as_array();

    /// Object access.  `set` inserts or overwrites; `at` throws LookupError
    /// for missing keys; `get_or` returns a fallback.
    void set(const std::string& key, JsonValue value);
    [[nodiscard]] bool contains(const std::string& key) const;
    [[nodiscard]] const JsonValue& at(const std::string& key) const;
    [[nodiscard]] JsonValue& at(const std::string& key);
    [[nodiscard]] double get_or(const std::string& key, double fallback) const;
    [[nodiscard]] std::string get_or(const std::string& key,
                                     const std::string& fallback) const;
    [[nodiscard]] bool get_or(const std::string& key, bool fallback) const;
    [[nodiscard]] const std::vector<std::string>& keys() const;

    /// Array append.
    void push_back(JsonValue value);

    /// Serialises; indent > 0 pretty-prints with that many spaces per level.
    [[nodiscard]] std::string dump(int indent = 0) const;

    /// Parses a complete JSON document; throws ParseError with a
    /// line/column diagnostic on malformed input.
    [[nodiscard]] static JsonValue parse(const std::string& text);

    /// Reads and parses a file; throws Error when unreadable.
    [[nodiscard]] static JsonValue load_file(const std::string& path);

    /// Writes `dump(indent)` to a file.
    void save_file(const std::string& path, int indent = 2) const;

private:
    struct ObjectRep {
        std::vector<std::string> order;
        std::map<std::string, JsonValue> entries;
    };

    // shared_ptr keeps JsonValue copyable while ObjectRep stays incomplete
    // in the variant; deep copy happens explicitly in set()/parse paths.
    using Storage = std::variant<std::monostate, bool, double, std::string,
                                 JsonArray, std::shared_ptr<ObjectRep>>;

    void dump_impl(std::string& out, int indent, int depth) const;
    [[nodiscard]] ObjectRep& object_rep();
    [[nodiscard]] const ObjectRep& object_rep() const;

    Storage value_;
};

/// Human-readable name of a JSON type ("number", "object", ...), for
/// diagnostics.
[[nodiscard]] const char* type_name(JsonValue::Type type);

/// Options for json_diff.
struct JsonDiffOptions {
    /// Numbers a, b compare equal when |a-b| <= tolerance * max(1, |a|, |b|).
    double tolerance = 1e-9;
    /// Object keys skipped everywhere (e.g. "meta" for run metadata).
    std::vector<std::string> ignore_keys;
    /// When set, strings that both parse completely as numbers compare
    /// numerically under `tolerance` — formatted table cells stay
    /// comparable across compilers.
    bool numeric_strings = true;
};

/// Float-tolerant structural comparison for golden-file checks.  Returns
/// an empty string when the documents match, otherwise a description of
/// the first difference found ("results[2].result.mean: 3.1 vs 3.2").
[[nodiscard]] std::string json_diff(const JsonValue& a, const JsonValue& b,
                                    const JsonDiffOptions& options = {});

/// Parses a complete string as a double into `out`; false when the
/// string is empty, has a non-numeric suffix, or overflows.  Shared by
/// json_diff's numeric-string mode and the table renderers.
[[nodiscard]] bool parse_full_number(const std::string& s, double& out);

/// Shortest decimal string that parses back to exactly `d` — unlike the
/// 12-significant-digit JSON number serialisation, which can map two
/// distinct doubles to the same text.  For side channels that must
/// round-trip ordering keys losslessly (sharded design-space dispatch).
[[nodiscard]] std::string exact_number_string(double d);

/// Field reader over one JSON object with a uniform, context-carrying
/// error format shared by every loader (tech, design, study):
///
///   tech.json: nodes[2]: required key 'name' is missing
///   studies.json: studies[0].config: key 'draws': expected number, got string
///
/// `context` names where the object came from (typically the file path
/// plus a JSON path); all failures throw ParseError beginning with it.
class JsonReader {
public:
    /// Throws ParseError when `value` is not an object.
    JsonReader(const JsonValue& value, std::string context);

    [[nodiscard]] const JsonValue& json() const { return value_; }
    [[nodiscard]] const std::string& context() const { return context_; }
    [[nodiscard]] bool has(const std::string& key) const;

    /// Required fields; throw ParseError naming the key and context when
    /// the key is missing or has the wrong type.
    [[nodiscard]] const JsonValue& require(const std::string& key) const;
    [[nodiscard]] std::string require_string(const std::string& key) const;
    [[nodiscard]] double require_number(const std::string& key) const;
    [[nodiscard]] const JsonArray& require_array(const std::string& key) const;

    /// Optional fields: `out` is assigned only when the key is present.
    /// Present-but-mistyped values throw (a silently ignored typo would
    /// mask a user error).  The unsigned overloads additionally require a
    /// non-negative integral number.
    void optional(const std::string& key, double& out) const;
    void optional(const std::string& key, std::string& out) const;
    void optional(const std::string& key, bool& out) const;
    void optional(const std::string& key, unsigned& out) const;
    void optional(const std::string& key, std::uint64_t& out) const;
    void optional(const std::string& key, std::vector<double>& out) const;
    void optional(const std::string& key, std::vector<std::string>& out) const;
    void optional(const std::string& key, std::vector<unsigned>& out) const;

    /// Context string for element `index` of the array under `key`:
    /// `<context>.<key>[<index>]`.
    [[nodiscard]] std::string element_context(const std::string& key,
                                              std::size_t index) const;

    [[noreturn]] void fail(const std::string& key, const std::string& what) const;

private:
    [[nodiscard]] double integral_number(const std::string& key,
                                         const JsonValue& v) const;

    const JsonValue& value_;
    std::string context_;
};

}  // namespace chiplet
