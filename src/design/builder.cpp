#include "design/builder.h"

#include "util/error.h"

namespace chiplet::design {

ChipBuilder::ChipBuilder(std::string name, std::string node)
    : name_(std::move(name)), node_(std::move(node)) {}

ChipBuilder& ChipBuilder::module(const std::string& name, double area_mm2) {
    return module(Module{name, area_mm2, node_, true});
}

ChipBuilder& ChipBuilder::module(const std::string& name, double area_mm2,
                                 const std::string& node, bool scalable) {
    return module(Module{name, area_mm2, node, scalable});
}

ChipBuilder& ChipBuilder::module(Module m) {
    modules_.push_back(std::move(m));
    return *this;
}

ChipBuilder& ChipBuilder::d2d(double fraction) {
    d2d_fraction_ = fraction;
    return *this;
}

Chip ChipBuilder::build() const { return Chip(name_, node_, modules_, d2d_fraction_); }

SystemBuilder::SystemBuilder(std::string name, std::string packaging)
    : name_(std::move(name)), packaging_(std::move(packaging)) {}

SystemBuilder& SystemBuilder::chip(Chip c) { return chips(std::move(c), 1); }

SystemBuilder& SystemBuilder::chips(Chip c, unsigned count) {
    CHIPLET_EXPECTS(count > 0, "chip placement count must be positive");
    placements_.push_back(ChipPlacement{std::move(c), count});
    return *this;
}

SystemBuilder& SystemBuilder::quantity(double units) {
    CHIPLET_EXPECTS(units > 0.0, "production quantity must be positive");
    quantity_ = units;
    return *this;
}

SystemBuilder& SystemBuilder::package_design(std::string id) {
    CHIPLET_EXPECTS(!id.empty(), "package design id must not be empty");
    package_design_ = std::move(id);
    return *this;
}

System SystemBuilder::build() const {
    System s(name_, packaging_, placements_, quantity_);
    if (!package_design_.empty()) s.set_package_design(package_design_);
    return s;
}

}  // namespace chiplet::design
