// The paper's smallest design unit (Eq. 3): an indivisible group of
// functional units.  Modules carry their own design node so heterogeneous
// chips can mix blocks specified at different nodes; areas are retargeted
// by transistor density when a module is instantiated on a chip built at
// a different node (non-scalable IO/analog blocks keep their area).
#pragma once

#include <compare>
#include <string>

namespace chiplet::design {

/// An indivisible functional block.  Value type; equality is memberwise
/// (used to detect conflicting redefinitions of a reused module name).
struct Module {
    std::string name;       ///< unique within a system family
    double area_mm2 = 0.0;  ///< area at `node`
    std::string node;       ///< process node the area is specified at
    bool scalable = true;   ///< false for IO/analog blocks that do not shrink

    [[nodiscard]] bool operator==(const Module&) const = default;
};

}  // namespace chiplet::design
