#include "design/partition.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace chiplet::design {

std::vector<Chip> split_homogeneous(const std::string& base_name,
                                    const std::string& node,
                                    double total_module_area_mm2, unsigned k,
                                    double d2d_fraction) {
    CHIPLET_EXPECTS(total_module_area_mm2 > 0.0, "total module area must be positive");
    CHIPLET_EXPECTS(k > 0, "need at least one chiplet");
    const double slice = total_module_area_mm2 / static_cast<double>(k);
    std::vector<Chip> chips;
    chips.reserve(k);
    for (unsigned i = 1; i <= k; ++i) {
        const std::string name =
            base_name + "_" + std::to_string(i) + "of" + std::to_string(k);
        chips.emplace_back(name, node,
                           std::vector<Module>{Module{name + "_logic", slice, node, true}},
                           d2d_fraction);
    }
    return chips;
}

namespace {

double bin_area(const std::vector<Module>& bin) {
    return std::accumulate(bin.begin(), bin.end(), 0.0,
                           [](double acc, const Module& m) { return acc + m.area_mm2; });
}

double max_bin_area(const std::vector<std::vector<Module>>& bins) {
    double worst = 0.0;
    for (const auto& bin : bins) worst = std::max(worst, bin_area(bin));
    return worst;
}

/// One hill-climbing pass: try moving any module to another bin, then
/// swapping any pair across bins; apply the first improvement found.
bool refine_once(std::vector<std::vector<Module>>& bins) {
    const double before = max_bin_area(bins);
    for (std::size_t a = 0; a < bins.size(); ++a) {
        for (std::size_t b = 0; b < bins.size(); ++b) {
            if (a == b) continue;
            // Single moves (bins must stay non-empty).
            for (std::size_t i = 0; i < bins[a].size(); ++i) {
                if (bins[a].size() == 1) break;
                Module m = bins[a][i];
                bins[a].erase(bins[a].begin() + static_cast<std::ptrdiff_t>(i));
                bins[b].push_back(m);
                if (max_bin_area(bins) + 1e-12 < before) return true;
                bins[b].pop_back();
                bins[a].insert(bins[a].begin() + static_cast<std::ptrdiff_t>(i), m);
            }
            // Pairwise swaps.
            for (std::size_t i = 0; i < bins[a].size(); ++i) {
                for (std::size_t j = 0; j < bins[b].size(); ++j) {
                    std::swap(bins[a][i], bins[b][j]);
                    if (max_bin_area(bins) + 1e-12 < before) return true;
                    std::swap(bins[a][i], bins[b][j]);
                }
            }
        }
    }
    return false;
}

}  // namespace

Partition partition_modules(const std::vector<Module>& modules, unsigned k) {
    CHIPLET_EXPECTS(k > 0, "need at least one bin");
    CHIPLET_EXPECTS(k <= modules.size(),
                    "cannot split " + std::to_string(modules.size()) +
                        " modules into " + std::to_string(k) + " bins");
    for (const Module& m : modules) {
        CHIPLET_EXPECTS(m.area_mm2 > 0.0, "module area must be positive");
    }

    // Greedy LPT: biggest module first into the currently smallest bin.
    std::vector<Module> sorted = modules;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Module& a, const Module& b) {
                         return a.area_mm2 > b.area_mm2;
                     });
    std::vector<std::vector<Module>> bins(k);
    // Seed each bin with one module so none stays empty.
    for (unsigned i = 0; i < k; ++i) bins[i].push_back(sorted[i]);
    for (std::size_t i = k; i < sorted.size(); ++i) {
        auto smallest = std::min_element(
            bins.begin(), bins.end(),
            [](const auto& a, const auto& b) { return bin_area(a) < bin_area(b); });
        smallest->push_back(sorted[i]);
    }

    while (refine_once(bins)) {
    }

    Partition out;
    out.bins = std::move(bins);
    out.max_bin_area = max_bin_area(out.bins);
    const double total = std::accumulate(
        modules.begin(), modules.end(), 0.0,
        [](double acc, const Module& m) { return acc + m.area_mm2; });
    const double ideal = total / static_cast<double>(k);
    out.imbalance = out.max_bin_area / ideal - 1.0;
    return out;
}

std::vector<Chip> chips_from_partition(const Partition& partition,
                                       const std::string& base_name,
                                       const std::string& node,
                                       double d2d_fraction) {
    const std::vector<std::string> nodes(partition.bins.size(), node);
    return chips_from_partition(partition, base_name, nodes, d2d_fraction);
}

std::vector<Chip> chips_from_partition(const Partition& partition,
                                       const std::string& base_name,
                                       std::span<const std::string> nodes,
                                       double d2d_fraction) {
    CHIPLET_EXPECTS(!partition.bins.empty(), "partition has no bins");
    CHIPLET_EXPECTS(nodes.size() == partition.bins.size(),
                    "need one node per partition bin, got " +
                        std::to_string(nodes.size()) + " nodes for " +
                        std::to_string(partition.bins.size()) + " bins");
    std::vector<Chip> chips;
    chips.reserve(partition.bins.size());
    for (std::size_t i = 0; i < partition.bins.size(); ++i) {
        chips.emplace_back(base_name + "_" + std::to_string(i + 1), nodes[i],
                           partition.bins[i], d2d_fraction);
    }
    return chips;
}

}  // namespace chiplet::design
