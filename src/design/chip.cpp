#include "design/chip.h"

#include "util/error.h"

namespace chiplet::design {

Chip::Chip(std::string name, std::string node, std::vector<Module> modules,
           double d2d_fraction)
    : name_(std::move(name)),
      node_(std::move(node)),
      modules_(std::move(modules)),
      d2d_fraction_(d2d_fraction) {
    CHIPLET_EXPECTS(!name_.empty(), "chip needs a name");
    CHIPLET_EXPECTS(!node_.empty(), "chip needs a process node");
    CHIPLET_EXPECTS(!modules_.empty(), "chip needs at least one module");
    CHIPLET_EXPECTS(d2d_fraction_ >= 0.0 && d2d_fraction_ < 1.0,
                    "D2D fraction must lie in [0, 1)");
    for (const Module& m : modules_) {
        CHIPLET_EXPECTS(!m.name.empty(), "module needs a name");
        CHIPLET_EXPECTS(m.area_mm2 > 0.0, "module area must be positive");
        CHIPLET_EXPECTS(!m.node.empty(), "module needs a design node");
    }
}

double Chip::module_area(const tech::TechLibrary& lib) const {
    const tech::ProcessNode& target = lib.node(node_);
    double total = 0.0;
    for (const Module& m : modules_) {
        const tech::ProcessNode& from = lib.node(m.node);
        total += target.retarget_area(m.area_mm2, from, m.scalable);
    }
    return total;
}

double Chip::area(const tech::TechLibrary& lib) const {
    return module_area(lib) / (1.0 - d2d_fraction_);
}

double Chip::d2d_area(const tech::TechLibrary& lib) const {
    return area(lib) - module_area(lib);
}

}  // namespace chiplet::design
