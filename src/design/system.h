// A system (package of chips, paper Eq. 3) and a family of systems that
// share module/chip/package designs (the unit over which NRE reuse and
// amortisation are computed).
#pragma once

#include <string>
#include <vector>

#include "design/chip.h"

namespace chiplet::design {

/// A chip design placed `count` times in a package.
struct ChipPlacement {
    Chip chip;
    unsigned count = 1;

    [[nodiscard]] bool operator==(const ChipPlacement&) const = default;
};

/// One product: chips in a package, manufactured in `quantity` units.
/// Systems sharing `package_design` reuse one package/interposer design:
/// they split its NRE, but every member pays the RE of the largest
/// member's package (paper Sec. 5.1 package-reuse trade-off).
class System {
public:
    System(std::string name, std::string packaging, std::vector<ChipPlacement> chips,
           double quantity);

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const std::string& packaging() const { return packaging_; }
    [[nodiscard]] const std::vector<ChipPlacement>& placements() const {
        return chips_;
    }
    [[nodiscard]] double quantity() const { return quantity_; }

    /// Package-design identity; defaults to `pkg:<system name>` (private
    /// design).  Assign the same id to several systems to reuse.
    [[nodiscard]] const std::string& package_design() const {
        return package_design_;
    }
    void set_package_design(std::string id);

    /// Total number of dies in one package.
    [[nodiscard]] unsigned die_count() const;

    /// Sum of die areas in one package (mm^2).
    [[nodiscard]] double total_die_area(const tech::TechLibrary& lib) const;

    /// True when the system holds exactly one die (monolithic SoC shape).
    [[nodiscard]] bool is_monolithic() const { return die_count() == 1; }

    [[nodiscard]] bool operator==(const System&) const = default;

private:
    std::string name_;
    std::string packaging_;
    std::vector<ChipPlacement> chips_;
    double quantity_;
    std::string package_design_;
};

/// A group of systems evaluated together.  Designs are identified by
/// name: modules with equal names must be identical, likewise chips; the
/// family validates this on construction (catching accidental clashes).
class SystemFamily {
public:
    SystemFamily() = default;
    explicit SystemFamily(std::vector<System> systems);

    void add(System system);

    [[nodiscard]] const std::vector<System>& systems() const { return systems_; }
    [[nodiscard]] bool empty() const { return systems_.empty(); }
    [[nodiscard]] std::size_t size() const { return systems_.size(); }

    /// Unique chip designs across the family (by name, insertion order).
    [[nodiscard]] std::vector<Chip> unique_chips() const;

    /// Unique modules across the family (by name, insertion order).
    [[nodiscard]] std::vector<Module> unique_modules() const;

    /// Unique package-design ids (insertion order).
    [[nodiscard]] std::vector<std::string> unique_package_designs() const;

private:
    void check_consistency(const System& system) const;

    std::vector<System> systems_;
};

}  // namespace chiplet::design
