// Fluent builders — the primary way user code assembles designs:
//
//   Chip ccd = ChipBuilder("ccd", "7nm").module("cores", 66.6).d2d(0.10).build();
//   System epyc = SystemBuilder("epyc64", "MCM").chips(ccd, 8).chip(iod)
//                     .quantity(1e6).build();
#pragma once

#include <string>
#include <vector>

#include "design/system.h"

namespace chiplet::design {

/// Builds a Chip step by step.  Modules default their design node to the
/// chip's manufacturing node.
class ChipBuilder {
public:
    /// `node` is the manufacturing process (must exist in the TechLibrary
    /// used at evaluation time).
    ChipBuilder(std::string name, std::string node);

    /// Adds a scalable module specified at the chip's node.
    ChipBuilder& module(const std::string& name, double area_mm2);

    /// Adds a module specified at a foreign node (heterogeneous reuse);
    /// `scalable == false` keeps the area when retargeting (IO/analog).
    ChipBuilder& module(const std::string& name, double area_mm2,
                        const std::string& node, bool scalable = true);

    /// Adds an existing module description verbatim.
    ChipBuilder& module(Module m);

    /// Sets the D2D area fraction (share of final die area).
    ChipBuilder& d2d(double fraction);

    /// Finalises; throws ParameterError when invariants are violated.
    [[nodiscard]] Chip build() const;

private:
    std::string name_;
    std::string node_;
    std::vector<Module> modules_;
    double d2d_fraction_ = 0.0;
};

/// Builds a System step by step.
class SystemBuilder {
public:
    /// `packaging` names a PackagingTech ("SoC", "MCM", "InFO", "2.5D"
    /// in the built-in library).
    SystemBuilder(std::string name, std::string packaging);

    /// Places one instance of a chip design.
    SystemBuilder& chip(Chip c);

    /// Places `count` instances of a chip design.
    SystemBuilder& chips(Chip c, unsigned count);

    /// Sets the production quantity (default 1e6).
    SystemBuilder& quantity(double units);

    /// Marks the system as sharing a package design with every other
    /// system using the same id.
    SystemBuilder& package_design(std::string id);

    [[nodiscard]] System build() const;

private:
    std::string name_;
    std::string packaging_;
    std::vector<ChipPlacement> placements_;
    double quantity_ = 1e6;
    std::string package_design_;
};

}  // namespace chiplet::design
