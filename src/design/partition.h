// Partitioning helpers: split a monolithic design into k chiplets.
// Two levels of fidelity:
//   - split_homogeneous: the paper's Fig. 4 workload — divide a total
//     module area into k equal chiplets,
//   - partition_modules: balanced k-way partition of a concrete module
//     list (greedy longest-processing-time seed + pairwise-swap
//     refinement), for users re-partitioning real floorplans.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "design/chip.h"

namespace chiplet::design {

/// Splits `total_module_area` into `k` equal chiplets at `node`, each
/// with the given D2D fraction added on top (paper Sec. 4.1: "We divide
/// a monolithic chip into different numbers of chiplets").  Chips are
/// named `<base_name>_1of<k>` ... and contain one synthetic module each;
/// module names are also unique per slice so family NRE counts each
/// slice's design once.
[[nodiscard]] std::vector<Chip> split_homogeneous(const std::string& base_name,
                                                  const std::string& node,
                                                  double total_module_area_mm2,
                                                  unsigned k, double d2d_fraction);

/// Result of a concrete module partition.
struct Partition {
    std::vector<std::vector<Module>> bins;  ///< k non-empty groups
    double max_bin_area = 0.0;              ///< largest group area
    double imbalance = 0.0;  ///< max/ideal - 1, ideal = total/k
};

/// Balanced k-way partition of `modules` minimising the largest bin
/// area.  Greedy LPT assignment followed by hill-climbing single-move
/// and pairwise-swap refinement; deterministic.  Throws ParameterError
/// when k is 0 or exceeds the module count.
[[nodiscard]] Partition partition_modules(const std::vector<Module>& modules,
                                          unsigned k);

/// Builds chips from a partition: bin i becomes chip `<base_name>_<i+1>`
/// at `node` with the given D2D fraction.
[[nodiscard]] std::vector<Chip> chips_from_partition(const Partition& partition,
                                                     const std::string& base_name,
                                                     const std::string& node,
                                                     double d2d_fraction);

/// Heterogeneous-integration form: bin i is manufactured at `nodes[i]`
/// (scalable module areas retarget to that node at evaluation time).
/// Throws ParameterError when `nodes` and the bins disagree in count.
[[nodiscard]] std::vector<Chip> chips_from_partition(
    const Partition& partition, const std::string& base_name,
    std::span<const std::string> nodes, double d2d_fraction);

}  // namespace chiplet::design
