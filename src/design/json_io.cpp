#include "design/json_io.h"

#include <map>

#include "util/error.h"

namespace chiplet::design {

JsonValue to_json(const Module& module) {
    JsonValue v = JsonValue::object();
    v.set("name", module.name);
    v.set("area_mm2", module.area_mm2);
    v.set("node", module.node);
    v.set("scalable", module.scalable);
    return v;
}

JsonValue to_json(const Chip& chip) {
    JsonValue v = JsonValue::object();
    v.set("name", chip.name());
    v.set("node", chip.node());
    v.set("d2d_fraction", chip.d2d_fraction());
    JsonValue modules = JsonValue::array();
    for (const Module& m : chip.modules()) modules.push_back(to_json(m));
    v.set("modules", std::move(modules));
    return v;
}

JsonValue to_json(const SystemFamily& family) {
    JsonValue chips = JsonValue::array();
    for (const Chip& chip : family.unique_chips()) chips.push_back(to_json(chip));

    JsonValue systems = JsonValue::array();
    for (const System& system : family.systems()) {
        JsonValue s = JsonValue::object();
        s.set("name", system.name());
        s.set("packaging", system.packaging());
        s.set("quantity", system.quantity());
        if (system.package_design() != "pkg:" + system.name()) {
            s.set("package_design", system.package_design());
        }
        JsonValue placements = JsonValue::array();
        for (const ChipPlacement& p : system.placements()) {
            JsonValue placement = JsonValue::object();
            placement.set("chip", p.chip.name());
            placement.set("count", static_cast<double>(p.count));
            placements.push_back(std::move(placement));
        }
        s.set("placements", std::move(placements));
        systems.push_back(std::move(s));
    }

    JsonValue v = JsonValue::object();
    v.set("chips", std::move(chips));
    v.set("systems", std::move(systems));
    return v;
}

Module module_from_json(const JsonValue& v) {
    Module m;
    m.name = v.at("name").as_string();
    m.area_mm2 = v.at("area_mm2").as_number();
    m.node = v.at("node").as_string();
    m.scalable = v.get_or("scalable", true);
    return m;
}

Chip chip_from_json(const JsonValue& v) {
    std::vector<Module> modules;
    for (const JsonValue& m : v.at("modules").as_array()) {
        modules.push_back(module_from_json(m));
    }
    return Chip(v.at("name").as_string(), v.at("node").as_string(),
                std::move(modules), v.get_or("d2d_fraction", 0.0));
}

SystemFamily family_from_json(const JsonValue& v) {
    std::map<std::string, Chip> chips;
    if (v.contains("chips")) {
        for (const JsonValue& c : v.at("chips").as_array()) {
            Chip chip = chip_from_json(c);
            const std::string name = chip.name();
            if (!chips.try_emplace(name, std::move(chip)).second) {
                throw ParseError("duplicate chip definition: " + name);
            }
        }
    }

    SystemFamily family;
    if (v.contains("systems")) {
        for (const JsonValue& s : v.at("systems").as_array()) {
            std::vector<ChipPlacement> placements;
            for (const JsonValue& p : s.at("placements").as_array()) {
                const std::string chip_name = p.at("chip").as_string();
                auto it = chips.find(chip_name);
                if (it == chips.end()) {
                    throw LookupError("system references undefined chip: " +
                                      chip_name);
                }
                const double count = p.get_or("count", 1.0);
                CHIPLET_EXPECTS(count >= 1.0 && count == static_cast<unsigned>(count),
                                "placement count must be a positive integer");
                placements.push_back(
                    ChipPlacement{it->second, static_cast<unsigned>(count)});
            }
            System system(s.at("name").as_string(),
                          s.at("packaging").as_string(), std::move(placements),
                          s.at("quantity").as_number());
            if (s.contains("package_design")) {
                system.set_package_design(s.at("package_design").as_string());
            }
            family.add(std::move(system));
        }
    }
    return family;
}

void save_family(const SystemFamily& family, const std::string& path) {
    to_json(family).save_file(path);
}

SystemFamily load_family(const std::string& path) {
    return family_from_json(JsonValue::load_file(path));
}

}  // namespace chiplet::design
