#include "design/json_io.h"

#include <map>

#include "util/error.h"

namespace chiplet::design {

JsonValue to_json(const Module& module) {
    JsonValue v = JsonValue::object();
    v.set("name", module.name);
    v.set("area_mm2", module.area_mm2);
    v.set("node", module.node);
    v.set("scalable", module.scalable);
    return v;
}

JsonValue to_json(const Chip& chip) {
    JsonValue v = JsonValue::object();
    v.set("name", chip.name());
    v.set("node", chip.node());
    v.set("d2d_fraction", chip.d2d_fraction());
    JsonValue modules = JsonValue::array();
    for (const Module& m : chip.modules()) modules.push_back(to_json(m));
    v.set("modules", std::move(modules));
    return v;
}

JsonValue to_json(const SystemFamily& family) {
    JsonValue chips = JsonValue::array();
    for (const Chip& chip : family.unique_chips()) chips.push_back(to_json(chip));

    JsonValue systems = JsonValue::array();
    for (const System& system : family.systems()) {
        JsonValue s = JsonValue::object();
        s.set("name", system.name());
        s.set("packaging", system.packaging());
        s.set("quantity", system.quantity());
        if (system.package_design() != "pkg:" + system.name()) {
            s.set("package_design", system.package_design());
        }
        JsonValue placements = JsonValue::array();
        for (const ChipPlacement& p : system.placements()) {
            JsonValue placement = JsonValue::object();
            placement.set("chip", p.chip.name());
            placement.set("count", static_cast<double>(p.count));
            placements.push_back(std::move(placement));
        }
        s.set("placements", std::move(placements));
        systems.push_back(std::move(s));
    }

    JsonValue v = JsonValue::object();
    v.set("chips", std::move(chips));
    v.set("systems", std::move(systems));
    return v;
}

Module module_from_json(const JsonValue& v, const std::string& context) {
    const JsonReader r(v, context);
    Module m;
    m.name = r.require_string("name");
    m.area_mm2 = r.require_number("area_mm2");
    m.node = r.require_string("node");
    m.scalable = true;
    r.optional("scalable", m.scalable);
    return m;
}

Chip chip_from_json(const JsonValue& v, const std::string& context) {
    const JsonReader r(v, context);
    std::vector<Module> modules;
    const JsonArray& entries = r.require_array("modules");
    for (std::size_t i = 0; i < entries.size(); ++i) {
        modules.push_back(
            module_from_json(entries[i], r.element_context("modules", i)));
    }
    double d2d_fraction = 0.0;
    r.optional("d2d_fraction", d2d_fraction);
    return Chip(r.require_string("name"), r.require_string("node"),
                std::move(modules), d2d_fraction);
}

SystemFamily family_from_json(const JsonValue& v, const std::string& context) {
    const JsonReader r(v, context);
    std::map<std::string, Chip> chips;
    if (r.has("chips")) {
        const JsonArray& entries = r.require_array("chips");
        for (std::size_t i = 0; i < entries.size(); ++i) {
            Chip chip = chip_from_json(entries[i], r.element_context("chips", i));
            const std::string name = chip.name();
            if (!chips.try_emplace(name, std::move(chip)).second) {
                throw ParseError(context + ": duplicate chip definition: " + name);
            }
        }
    }

    SystemFamily family;
    if (r.has("systems")) {
        const JsonArray& entries = r.require_array("systems");
        for (std::size_t i = 0; i < entries.size(); ++i) {
            const std::string sctx = r.element_context("systems", i);
            const JsonReader s(entries[i], sctx);
            std::vector<ChipPlacement> placements;
            const JsonArray& pentries = s.require_array("placements");
            for (std::size_t pi = 0; pi < pentries.size(); ++pi) {
                const JsonReader p(pentries[pi],
                                   s.element_context("placements", pi));
                const std::string chip_name = p.require_string("chip");
                auto it = chips.find(chip_name);
                if (it == chips.end()) {
                    throw LookupError(p.context() +
                                      ": system references undefined chip: " +
                                      chip_name);
                }
                double count = 1.0;
                p.optional("count", count);
                CHIPLET_EXPECTS(count >= 1.0 && count == static_cast<unsigned>(count),
                                "placement count must be a positive integer");
                placements.push_back(
                    ChipPlacement{it->second, static_cast<unsigned>(count)});
            }
            System system(s.require_string("name"), s.require_string("packaging"),
                          std::move(placements), s.require_number("quantity"));
            if (s.has("package_design")) {
                system.set_package_design(s.require_string("package_design"));
            }
            family.add(std::move(system));
        }
    }
    return family;
}

void save_family(const SystemFamily& family, const std::string& path) {
    to_json(family).save_file(path);
}

SystemFamily load_family(const std::string& path) {
    return family_from_json(JsonValue::load_file(path), path);
}

}  // namespace chiplet::design
