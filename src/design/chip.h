// A chip (die) design: a set of modules manufactured at one node, plus a
// D2D interface allowance (paper Sec. 3.1: "D2D interface is a particular
// module with which each module makes up a chiplet").
#pragma once

#include <string>
#include <vector>

#include "design/module.h"
#include "tech/tech_library.h"

namespace chiplet::design {

/// A die design.  Invariant: name and node non-empty, d2d fraction in
/// [0, 1), at least one module.  Value type with memberwise equality.
class Chip {
public:
    /// `d2d_fraction` is the share of the *final die area* occupied by
    /// D2D interfaces (the paper assumes 0.10 for its multi-chip
    /// experiments): die area = module area / (1 - d2d_fraction).
    Chip(std::string name, std::string node, std::vector<Module> modules,
         double d2d_fraction = 0.0);

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const std::string& node() const { return node_; }
    [[nodiscard]] const std::vector<Module>& modules() const { return modules_; }
    [[nodiscard]] double d2d_fraction() const { return d2d_fraction_; }

    /// Sum of module areas retargeted to this chip's node (mm^2).
    /// Throws LookupError when a module references an unknown node.
    [[nodiscard]] double module_area(const tech::TechLibrary& lib) const;

    /// Total die area including the D2D allowance:
    /// module_area / (1 - d2d_fraction).
    [[nodiscard]] double area(const tech::TechLibrary& lib) const;

    /// Area spent on D2D interfaces: area - module_area.
    [[nodiscard]] double d2d_area(const tech::TechLibrary& lib) const;

    [[nodiscard]] bool operator==(const Chip&) const = default;

private:
    std::string name_;
    std::string node_;
    std::vector<Module> modules_;
    double d2d_fraction_;
};

}  // namespace chiplet::design
