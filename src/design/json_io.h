// JSON (de)serialisation of designs, so systems can be described in
// files and fed to the CLI / custom tools.  Schema:
//
//   {
//     "chips": [
//       { "name": "ccd", "node": "7nm", "d2d_fraction": 0.1,
//         "modules": [ { "name": "cores", "area_mm2": 66.0,
//                        "node": "7nm", "scalable": true } ] } ],
//     "systems": [
//       { "name": "epyc64", "packaging": "MCM", "quantity": 1e6,
//         "package_design": "pkg:epyc",          // optional
//         "placements": [ { "chip": "ccd", "count": 8 } ] } ]
//   }
//
// Chips are defined once and referenced by name, which is also how
// design reuse is expressed.
#pragma once

#include <string>

#include "design/system.h"
#include "util/json.h"

namespace chiplet::design {

[[nodiscard]] JsonValue to_json(const Module& module);
[[nodiscard]] JsonValue to_json(const Chip& chip);

/// Serialises the whole family: unique chips + systems referencing them.
[[nodiscard]] JsonValue to_json(const SystemFamily& family);

/// Parsers; `context` prefixes error messages (typically the file path).
[[nodiscard]] Module module_from_json(const JsonValue& v,
                                      const std::string& context = "module");
[[nodiscard]] Chip chip_from_json(const JsonValue& v,
                                  const std::string& context = "chip");

/// Parses a family document; throws ParseError / LookupError on
/// malformed input or dangling chip references.
[[nodiscard]] SystemFamily family_from_json(const JsonValue& v,
                                            const std::string& context = "family");

/// File convenience wrappers.
void save_family(const SystemFamily& family, const std::string& path);
[[nodiscard]] SystemFamily load_family(const std::string& path);

}  // namespace chiplet::design
