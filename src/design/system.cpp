#include "design/system.h"

#include <algorithm>

#include "util/error.h"

namespace chiplet::design {

System::System(std::string name, std::string packaging,
               std::vector<ChipPlacement> chips, double quantity)
    : name_(std::move(name)),
      packaging_(std::move(packaging)),
      chips_(std::move(chips)),
      quantity_(quantity),
      package_design_("pkg:" + name_) {
    CHIPLET_EXPECTS(!name_.empty(), "system needs a name");
    CHIPLET_EXPECTS(!packaging_.empty(), "system needs a packaging technology");
    CHIPLET_EXPECTS(!chips_.empty(), "system needs at least one chip");
    CHIPLET_EXPECTS(quantity_ > 0.0, "production quantity must be positive");
    for (const ChipPlacement& p : chips_) {
        CHIPLET_EXPECTS(p.count > 0, "chip placement count must be positive");
    }
}

void System::set_package_design(std::string id) {
    CHIPLET_EXPECTS(!id.empty(), "package design id must not be empty");
    package_design_ = std::move(id);
}

unsigned System::die_count() const {
    unsigned n = 0;
    for (const ChipPlacement& p : chips_) n += p.count;
    return n;
}

double System::total_die_area(const tech::TechLibrary& lib) const {
    double total = 0.0;
    for (const ChipPlacement& p : chips_) {
        total += p.chip.area(lib) * static_cast<double>(p.count);
    }
    return total;
}

SystemFamily::SystemFamily(std::vector<System> systems) {
    for (System& s : systems) add(std::move(s));
}

void SystemFamily::add(System system) {
    check_consistency(system);
    systems_.push_back(std::move(system));
}

void SystemFamily::check_consistency(const System& system) const {
    // A design name must always denote the same content: equal-named chips
    // (and modules) anywhere in the family must compare equal, otherwise
    // NRE sharing would silently merge different designs.
    for (const ChipPlacement& p : system.placements()) {
        for (const System& existing : systems_) {
            for (const ChipPlacement& q : existing.placements()) {
                if (p.chip.name() == q.chip.name()) {
                    CHIPLET_EXPECTS(p.chip == q.chip,
                                    "chip name '" + p.chip.name() +
                                        "' redefined with different content");
                }
                for (const Module& m : p.chip.modules()) {
                    for (const Module& o : q.chip.modules()) {
                        if (m.name == o.name) {
                            CHIPLET_EXPECTS(m == o,
                                            "module name '" + m.name +
                                                "' redefined with different content");
                        }
                    }
                }
            }
        }
    }
}

std::vector<Chip> SystemFamily::unique_chips() const {
    std::vector<Chip> out;
    for (const System& s : systems_) {
        for (const ChipPlacement& p : s.placements()) {
            const bool seen = std::any_of(out.begin(), out.end(), [&](const Chip& c) {
                return c.name() == p.chip.name();
            });
            if (!seen) out.push_back(p.chip);
        }
    }
    return out;
}

std::vector<Module> SystemFamily::unique_modules() const {
    std::vector<Module> out;
    for (const System& s : systems_) {
        for (const ChipPlacement& p : s.placements()) {
            for (const Module& m : p.chip.modules()) {
                const bool seen =
                    std::any_of(out.begin(), out.end(),
                                [&](const Module& x) { return x.name == m.name; });
                if (!seen) out.push_back(m);
            }
        }
    }
    return out;
}

std::vector<std::string> SystemFamily::unique_package_designs() const {
    std::vector<std::string> out;
    for (const System& s : systems_) {
        if (std::find(out.begin(), out.end(), s.package_design()) == out.end()) {
            out.push_back(s.package_design());
        }
    }
    return out;
}

}  // namespace chiplet::design
