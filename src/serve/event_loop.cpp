#include "serve/event_loop.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/error.h"

namespace chiplet::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-read cap: drain a hot socket in slices so one fast pipeliner
/// cannot starve every other connection for a whole epoll round.
constexpr std::size_t kReadSliceBytes = 256 * 1024;

}  // namespace

struct EventLoop::Impl {
    EventLoopConfig config;
    FrameHandler handler;
    std::function<std::string(bool complete)> oversized_encoder;
    std::function<void()> on_shutdown;

    LoopCounters counters;

    // -- loop-thread state (touched only by the loop thread) ---------------
    struct Conn {
        int fd = -1;
        std::uint64_t gen = 0;
        std::string in;               ///< bytes read, not yet framed
        std::string out;              ///< queued responses
        std::size_t out_off = 0;      ///< bytes of `out` already sent
        std::deque<std::string> pending;  ///< frames awaiting their turn
        std::size_t pending_bytes = 0;
        bool job_in_flight = false;
        bool paused = false;        ///< backpressure: EPOLLIN dropped
        bool stop_reading = false;  ///< overrun / close-after: input done
        bool eof = false;           ///< peer half-closed
        bool close_after_flush = false;
        bool announce_after_flush = false;
        bool in_drain = false;  ///< re-entrance guard for drain_pending
        /// Burst mode: queue_response skips the per-frame flush and the
        /// caller sends the whole batch in one syscall — the reason a
        /// pipelined burst costs one send(2) here but one per response
        /// on the thread-per-connection transport.
        bool corked = false;
        std::uint32_t interest = 0;  ///< epoll mask last installed
        Clock::time_point last_activity;

        [[nodiscard]] std::size_t unsent() const { return out.size() - out_off; }
    };
    std::unordered_map<int, Conn> conns;
    std::uint64_t next_gen = 1;
    int epoll_fd = -1;
    int listen_fd = -1;
    bool loop_accepting = true;  ///< loop-thread view; `accepting_` mirrors it

    // -- shared state -------------------------------------------------------
    std::mutex lifecycle_mutex;  ///< guards start/stop transitions
    bool started = false;
    std::atomic<bool> stopping{false};
    std::atomic<bool> accepting_{false};
    std::atomic<unsigned short> port_{0};
    int wake_fd = -1;
    std::thread loop_thread;

    struct Task {
        int fd = -1;
        std::uint64_t gen = 0;
        std::function<std::string()> job;
    };
    struct Completion {
        int fd = -1;
        std::uint64_t gen = 0;
        std::string response;
    };
    std::mutex task_mutex;
    std::condition_variable task_cv;
    std::deque<Task> tasks;
    bool task_stop = false;
    std::vector<std::thread> workers;

    std::mutex completion_mutex;
    std::vector<Completion> completions;

    // ---------------------------------------------------------------------
    void wake() {
        const std::uint64_t one = 1;
        // A full eventfd counter still wakes the loop; short writes are
        // impossible for 8 bytes.
        (void)!::write(wake_fd, &one, sizeof(one));
    }

    void worker_loop() {
        for (;;) {
            Task task;
            {
                std::unique_lock<std::mutex> lock(task_mutex);
                task_cv.wait(lock, [&] { return task_stop || !tasks.empty(); });
                if (tasks.empty()) return;  // task_stop and nothing left
                task = std::move(tasks.front());
                tasks.pop_front();
            }
            std::string response;
            try {
                response = task.job();
            } catch (const std::exception& e) {
                // The handler's job is expected to catch everything and
                // encode an error itself; this is the last line of
                // defence so a serving process answers rather than dies.
                response = std::string(R"({"error":{"code":"internal",)"
                                       R"("message":")") +
                           "job failed" + R"("}})";
                (void)e;
            }
            {
                std::lock_guard<std::mutex> lock(completion_mutex);
                completions.push_back(Completion{task.fd, task.gen,
                                                 std::move(response)});
            }
            wake();
        }
    }

    // -- epoll plumbing -----------------------------------------------------
    void update_interest(Conn& c) {
        std::uint32_t mask = EPOLLRDHUP;
        if (!c.paused && !c.stop_reading && !c.eof) mask |= EPOLLIN;
        if (c.unsent() > 0) mask |= EPOLLOUT;
        if (mask == c.interest) return;  // skip the syscall on the hot path
        epoll_event ev{};
        ev.events = mask;
        ev.data.fd = c.fd;
        if (::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c.fd, &ev) == 0) {
            c.interest = mask;
        }
    }

    void close_conn(int fd) {
        const auto it = conns.find(fd);
        if (it == conns.end()) return;
        Conn& c = it->second;
        counters.queued_frames -= c.pending.size();
        counters.output_queue_bytes -= c.unsent();
        // An in-flight job's completion is dropped on arrival via the
        // generation check; in_flight itself is decremented there, so
        // the gauge never leaks.
        (void)::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
        ::close(fd);
        conns.erase(it);
        --counters.connections_live;
    }

    // -- output path --------------------------------------------------------
    /// Sends what the socket will take.  Returns false when the
    /// connection was closed (broken pipe, or a deferred close fired).
    bool flush(Conn& c) {
        while (c.out_off < c.out.size()) {
            const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                                     c.out.size() - c.out_off, MSG_NOSIGNAL);
            if (n > 0) {
                c.out_off += static_cast<std::size_t>(n);
                counters.output_queue_bytes -= static_cast<std::uint64_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR) continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            close_conn(c.fd);
            return false;
        }
        if (c.out_off == c.out.size()) {
            c.out.clear();
            c.out_off = 0;
            if (c.announce_after_flush) {
                // The shutdown ack is on the wire: now the owner may
                // wake its wait()ers without racing the response away.
                c.announce_after_flush = false;
                if (on_shutdown) on_shutdown();
            }
            if (c.close_after_flush) {
                close_conn(c.fd);
                return false;
            }
        } else if (c.out_off > kReadSliceBytes && c.out_off * 2 > c.out.size()) {
            // Reclaim the sent prefix once it dominates the buffer.
            c.out.erase(0, c.out_off);
            c.out_off = 0;
        }
        update_backpressure(c);
        update_interest(c);
        return true;
    }

    void update_backpressure(Conn& c) {
        const bool overloaded = c.unsent() >= config.max_output_bytes ||
                                c.pending_bytes >= config.max_output_bytes;
        if (overloaded && !c.paused) {
            c.paused = true;
            ++counters.backpressure_stalls;
        } else if (c.paused && !overloaded &&
                   c.unsent() <= config.max_output_bytes / 2) {
            c.paused = false;
        }
    }

    /// Queues one response frame and flushes opportunistically — unless
    /// the connection is corked mid-burst, in which case the caller owes
    /// one flush for the whole batch and this cannot close the
    /// connection.  Returns false when the connection died underneath it.
    bool queue_response(Conn& c, const std::string& response) {
        c.out += response;
        c.out += '\n';
        counters.output_queue_bytes += response.size() + 1;
        const std::uint64_t backlog = c.unsent();
        std::uint64_t peak = counters.peak_output_queue_bytes.load();
        while (backlog > peak &&
               !counters.peak_output_queue_bytes.compare_exchange_weak(peak,
                                                                       backlog)) {
        }
        c.last_activity = Clock::now();
        if (c.corked) {
            update_backpressure(c);
            return true;
        }
        return flush(c);
    }

    // -- frame path ---------------------------------------------------------
    bool run_frame(Conn& c, std::string&& frame) {
        FrameAction action = handler(std::move(frame));
        if (action.job) {
            c.job_in_flight = true;
            ++counters.in_flight;
            {
                std::lock_guard<std::mutex> lock(task_mutex);
                tasks.push_back(Task{c.fd, c.gen, std::move(action.job)});
            }
            task_cv.notify_one();
            return true;
        }
        if (action.announce_shutdown) {
            stop_accepting();
            c.announce_after_flush = true;
        }
        if (action.close_after) {
            // Mirror the blocking server: nothing after a close-after
            // frame (shutdown) is processed on this connection.
            c.close_after_flush = true;
            c.stop_reading = true;
            counters.queued_frames -= c.pending.size();
            c.pending.clear();
            c.pending_bytes = 0;
        }
        return queue_response(c, action.response);
    }

    /// Runs queued frames while the connection's turn allows it: no job
    /// in flight, output below the bound, not closing.  The whole batch
    /// is corked and flushed with one send(2) at the end.
    bool drain_pending(Conn& c) {
        if (c.in_drain) return true;
        c.in_drain = true;
        c.corked = true;
        while (!c.job_in_flight && !c.pending.empty() &&
               !c.close_after_flush &&
               c.unsent() < config.max_output_bytes) {
            std::string frame = std::move(c.pending.front());
            c.pending.pop_front();
            c.pending_bytes -= frame.size();
            --counters.queued_frames;
            (void)run_frame(c, std::move(frame));  // corked: cannot close
        }
        c.in_drain = false;
        c.corked = false;
        const int fd = c.fd;
        if (!flush(c)) return false;
        maybe_close_drained(c);
        return conns.find(fd) != conns.end();
    }

    /// A half-closed peer is disconnected once every answer it is owed
    /// has been computed and flushed.
    void maybe_close_drained(Conn& c) {
        if (c.eof && !c.job_in_flight && c.pending.empty() &&
            c.unsent() == 0) {
            close_conn(c.fd);
        }
    }

    void parse_frames(Conn& c) {
        c.corked = true;
        bool first = true;
        std::size_t pos;
        while (!c.stop_reading &&
               (pos = c.in.find('\n')) != std::string::npos) {
            std::string frame = c.in.substr(0, pos);
            c.in.erase(0, pos + 1);
            if (!first) ++counters.pipelined_frames;
            first = false;
            if (!frame.empty() && frame.back() == '\r') frame.pop_back();
            if (frame.size() > config.max_line_bytes) {
                // Complete frame: refuse it, keep the connection — the
                // stream is resynchronised at the delimiter.
                (void)queue_response(c, oversized_encoder(true));
                continue;
            }
            if (frame.find_first_not_of(" \t") == std::string::npos) continue;
            if (c.job_in_flight || !c.pending.empty() ||
                c.unsent() >= config.max_output_bytes) {
                c.pending_bytes += frame.size();
                c.pending.push_back(std::move(frame));
                ++counters.queued_frames;
            } else {
                (void)run_frame(c, std::move(frame));  // corked: cannot close
            }
        }
        if (!c.stop_reading && c.in.size() > config.max_line_bytes) {
            // Unterminated overrun: no delimiter to resynchronise at, so
            // answer once and close after the error flushes.
            c.stop_reading = true;
            c.close_after_flush = true;
            (void)queue_response(c, oversized_encoder(false));
        }
        c.corked = false;
        (void)flush(c);  // one send(2) for the whole pipelined burst
    }

    void handle_readable(int fd) {
        const auto it = conns.find(fd);
        if (it == conns.end()) return;
        Conn& c = it->second;
        if (!c.stop_reading && !c.paused) {
            char buf[16384];
            std::size_t read_this_round = 0;
            for (;;) {
                const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
                if (n > 0) {
                    c.in.append(buf, static_cast<std::size_t>(n));
                    read_this_round += static_cast<std::size_t>(n);
                    if (read_this_round >= kReadSliceBytes) break;
                    continue;
                }
                if (n == 0) {
                    c.eof = true;
                    break;
                }
                if (errno == EINTR) continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK) break;
                close_conn(fd);
                return;
            }
            c.last_activity = Clock::now();
            parse_frames(c);
            if (conns.find(fd) == conns.end()) return;
        } else {
            // Paused or input-done: peek for EOF only, never consume.
            char probe;
            const ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK);
            if (n == 0) conns.at(fd).eof = true;
        }
        Conn& again = conns.at(fd);
        if (again.eof) {
            again.stop_reading = true;
            update_interest(again);
            maybe_close_drained(again);
        }
    }

    void handle_writable(int fd) {
        const auto it = conns.find(fd);
        if (it == conns.end()) return;
        Conn& c = it->second;
        const bool was_paused = c.paused;
        if (!flush(c)) return;
        if (was_paused && !c.paused) {
            // Backpressure released: first work off frames the stall
            // parked, then read whatever the socket buffered meanwhile.
            if (!drain_pending(c)) return;
            const auto still = conns.find(fd);
            if (still != conns.end()) handle_readable(fd);
        } else {
            maybe_close_drained(c);
        }
    }

    void do_accept() {
        for (;;) {
            const int fd =
                ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
            if (fd < 0) {
                // EAGAIN: drained.  EMFILE and friends: give up this
                // round; the listener stays level-triggered so the next
                // epoll_wait retries without spinning.
                return;
            }
            if (!loop_accepting || stopping.load()) {
                ::close(fd);
                continue;
            }
            epoll_event ev{};
            ev.events = EPOLLIN | EPOLLRDHUP;
            ev.data.fd = fd;
            if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
                ::close(fd);
                continue;
            }
            Conn c;
            c.fd = fd;
            c.gen = next_gen++;
            c.interest = EPOLLIN | EPOLLRDHUP;
            c.last_activity = Clock::now();
            conns.emplace(fd, std::move(c));
            ++counters.connections;
            ++counters.connections_live;
        }
    }

    void deliver_completions() {
        std::vector<Completion> batch;
        {
            std::lock_guard<std::mutex> lock(completion_mutex);
            batch.swap(completions);
        }
        for (Completion& done : batch) {
            --counters.in_flight;
            const auto it = conns.find(done.fd);
            if (it == conns.end() || it->second.gen != done.gen) {
                continue;  // connection died while the job ran
            }
            Conn& c = it->second;
            c.job_in_flight = false;
            if (!queue_response(c, done.response)) continue;
            const auto still = conns.find(done.fd);
            if (still == conns.end()) continue;
            if (!drain_pending(still->second)) continue;
            const auto after = conns.find(done.fd);
            if (after != conns.end() && !after->second.paused &&
                !after->second.in.empty()) {
                // Bytes buffered while this connection's turn was busy
                // may hold complete frames; no new EPOLLIN will announce
                // them.
                parse_frames(after->second);
            }
        }
    }

    void sweep_idle() {
        if (config.idle_timeout_ms == 0) return;
        const auto now = Clock::now();
        const auto limit = std::chrono::milliseconds(config.idle_timeout_ms);
        std::vector<int> victims;
        for (const auto& [fd, c] : conns) {
            if (c.job_in_flight || !c.pending.empty() || c.unsent() > 0) {
                continue;  // mid-conversation, not idle
            }
            if (now - c.last_activity >= limit) victims.push_back(fd);
        }
        for (const int fd : victims) {
            close_conn(fd);
            ++counters.idle_disconnects;
        }
    }

    void stop_accepting() {
        if (!loop_accepting) return;
        loop_accepting = false;
        accepting_.store(false);
        // shutdown(2), not close(2): the fd number stays reserved until
        // teardown, but the kernel refuses new connections right away.
        (void)::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
        ::shutdown(listen_fd, SHUT_RDWR);
    }

    void loop() {
        std::vector<epoll_event> events(128);
        while (!stopping.load()) {
            int timeout = -1;
            if (config.idle_timeout_ms > 0 && !conns.empty()) {
                timeout = static_cast<int>(std::clamp<unsigned>(
                    config.idle_timeout_ms / 2, 10u, 1000u));
            }
            const int n = ::epoll_wait(epoll_fd, events.data(),
                                       static_cast<int>(events.size()),
                                       timeout);
            if (stopping.load()) break;
            if (n < 0) {
                if (errno == EINTR) continue;
                break;  // epoll fd itself is broken; nothing to serve
            }
            for (int i = 0; i < n; ++i) {
                const int fd = events[i].data.fd;
                const std::uint32_t mask = events[i].events;
                if (fd == wake_fd) {
                    std::uint64_t drained = 0;
                    (void)!::read(wake_fd, &drained, sizeof(drained));
                    deliver_completions();
                    continue;
                }
                if (fd == listen_fd) {
                    do_accept();
                    continue;
                }
                if (mask & (EPOLLERR | EPOLLHUP)) {
                    close_conn(fd);
                    continue;
                }
                if (mask & EPOLLOUT) handle_writable(fd);
                if (conns.find(fd) == conns.end()) continue;
                if (mask & (EPOLLIN | EPOLLRDHUP)) handle_readable(fd);
            }
            sweep_idle();
        }
        // Teardown on the loop thread: every socket is owned here, so no
        // other thread can race these closes.
        for (auto& [fd, c] : conns) ::close(fd);
        conns.clear();
        counters.connections_live.store(0);
        if (listen_fd >= 0) {
            ::close(listen_fd);
            listen_fd = -1;
        }
        if (epoll_fd >= 0) {
            ::close(epoll_fd);
            epoll_fd = -1;
        }
    }
};

EventLoop::EventLoop(EventLoopConfig config, FrameHandler handler,
                     std::function<std::string(bool complete)> oversized_encoder,
                     std::function<void()> on_shutdown)
    : impl_(new Impl) {
    impl_->config = config;
    impl_->handler = std::move(handler);
    impl_->oversized_encoder = std::move(oversized_encoder);
    impl_->on_shutdown = std::move(on_shutdown);
}

EventLoop::~EventLoop() {
    stop();
    delete impl_;
}

void EventLoop::start() {
    std::lock_guard<std::mutex> lock(impl_->lifecycle_mutex);
    if (impl_->started) return;

    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) {
        throw Error(std::string("serve: socket() failed: ") +
                    std::strerror(errno));
    }
    const int reuse = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(impl_->config.port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd);
        throw Error("serve: cannot bind 127.0.0.1:" +
                    std::to_string(impl_->config.port) + ": " +
                    std::strerror(err));
    }
    if (::listen(fd, impl_->config.backlog) < 0) {
        const int err = errno;
        ::close(fd);
        throw Error(std::string("serve: listen() failed: ") +
                    std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
        const int err = errno;
        ::close(fd);
        throw Error(std::string("serve: getsockname() failed: ") +
                    std::strerror(err));
    }

    const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd < 0) {
        const int err = errno;
        ::close(fd);
        throw Error(std::string("serve: epoll_create1() failed: ") +
                    std::strerror(err));
    }
    const int wake = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake < 0) {
        const int err = errno;
        ::close(fd);
        ::close(epfd);
        throw Error(std::string("serve: eventfd() failed: ") +
                    std::strerror(err));
    }
    epoll_event lev{};
    lev.events = EPOLLIN;
    lev.data.fd = fd;
    (void)::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &lev);
    epoll_event wev{};
    wev.events = EPOLLIN;
    wev.data.fd = wake;
    (void)::epoll_ctl(epfd, EPOLL_CTL_ADD, wake, &wev);

    impl_->listen_fd = fd;
    impl_->epoll_fd = epfd;
    impl_->wake_fd = wake;
    impl_->port_.store(ntohs(bound.sin_port));
    impl_->stopping.store(false);
    impl_->loop_accepting = true;
    impl_->accepting_.store(true);
    impl_->task_stop = false;

    const unsigned workers = std::max(1u, impl_->config.workers);
    impl_->workers.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        impl_->workers.emplace_back([this] { impl_->worker_loop(); });
    }
    impl_->loop_thread = std::thread([this] { impl_->loop(); });
    impl_->started = true;
}

void EventLoop::stop() {
    std::lock_guard<std::mutex> lock(impl_->lifecycle_mutex);
    if (!impl_->started) return;

    // Executors first: in-flight evaluations finish and push their
    // completions (the wake fd is still open), then the loop drains what
    // it can and exits.
    {
        std::lock_guard<std::mutex> task_lock(impl_->task_mutex);
        impl_->task_stop = true;
        impl_->tasks.clear();
    }
    impl_->task_cv.notify_all();
    for (std::thread& w : impl_->workers) {
        if (w.joinable()) w.join();
    }
    impl_->workers.clear();

    impl_->stopping.store(true);
    impl_->accepting_.store(false);
    impl_->wake();
    if (impl_->loop_thread.joinable()) impl_->loop_thread.join();
    if (impl_->wake_fd >= 0) {
        ::close(impl_->wake_fd);
        impl_->wake_fd = -1;
    }
    {
        std::lock_guard<std::mutex> comp_lock(impl_->completion_mutex);
        impl_->completions.clear();
    }
    impl_->started = false;
}

unsigned short EventLoop::port() const { return impl_->port_.load(); }

bool EventLoop::accepting() const { return impl_->accepting_.load(); }

const LoopCounters& EventLoop::counters() const { return impl_->counters; }

}  // namespace chiplet::serve
