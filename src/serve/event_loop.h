// Event-driven transport core of actuaryd: one epoll(7) readiness loop
// owning every socket, plus a small executor pool for frames whose
// handling is too heavy for the loop thread (study evaluation).
//
// Shape:
//  - All sockets are non-blocking.  The loop thread accepts, reads,
//    frames (newline-delimited), writes, and sweeps idle connections; it
//    never blocks on any single peer.
//  - Each complete frame is passed to the FrameHandler.  Cheap verbs
//    return their response inline; heavy ones return a job closure that
//    runs on an executor thread, and its result is handed back to the
//    loop through an eventfd(2) wakeup.
//  - Per-connection ordering: at most one frame of a connection is ever
//    in flight, and further pipelined frames wait in that connection's
//    queue — responses always come back in request order, while
//    different connections' jobs run concurrently.
//  - Write backpressure: responses queue in a per-connection output
//    buffer flushed as EPOLLOUT allows.  When a slow reader's queue
//    crosses max_output_bytes the loop stops reading (and stops
//    processing queued frames) for that connection until the queue
//    drains below half the bound — memory per connection stays bounded
//    no matter how fast the client pipelines.
//  - Idle timeout: connections with no traffic, no queued work and no
//    in-flight job for idle_timeout_ms are closed.
//
// The loop knows framing and byte limits but no protocol beyond the
// oversized-frame error (serve/protocol.h): everything else arrives
// through the FrameHandler, which keeps this file testable against any
// line protocol and keeps the server's counters out of the transport.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace chiplet::serve {

/// Transport gauges and counters, readable from any thread.  Gauges
/// (live/in_flight/queued/output bytes) are instantaneous; the rest are
/// lifetime counters.  peak_output_queue_bytes is the worst unsent
/// backlog any single connection ever reached — the boundedness witness
/// the backpressure tests assert on.
struct LoopCounters {
    std::atomic<std::uint64_t> connections{0};  ///< accepted, lifetime
    std::atomic<std::uint64_t> connections_live{0};
    std::atomic<std::uint64_t> in_flight{0};
    std::atomic<std::uint64_t> queued_frames{0};
    std::atomic<std::uint64_t> output_queue_bytes{0};
    std::atomic<std::uint64_t> peak_output_queue_bytes{0};
    std::atomic<std::uint64_t> backpressure_stalls{0};
    std::atomic<std::uint64_t> idle_disconnects{0};
    std::atomic<std::uint64_t> pipelined_frames{0};
};

/// What the protocol layer wants done with one complete frame.  Either
/// `response` is ready (cheap verb, parse error) or `job` is set and
/// runs on an executor thread, its return value becoming the response.
/// Jobs cannot close or shut down — only inline actions carry those
/// flags (the shutdown verb is inline by design).
struct FrameAction {
    std::string response;
    std::function<std::string()> job;
    bool close_after = false;        ///< close once the response flushed
    bool announce_shutdown = false;  ///< stop accepting; fire the
                                     ///< shutdown callback after flush
};

/// Invoked on the loop thread for every complete, non-blank,
/// size-admissible frame.  Must not block.
using FrameHandler = std::function<FrameAction(std::string&& frame)>;

struct EventLoopConfig {
    unsigned short port = 0;  ///< 0 binds an ephemeral port
    int backlog = 64;
    std::size_t max_line_bytes = 8ull << 20;
    /// Per-connection unsent-output bound; reading pauses above it and
    /// resumes below half of it.
    std::size_t max_output_bytes = 8ull << 20;
    unsigned idle_timeout_ms = 0;  ///< 0 = never disconnect idle peers
    unsigned workers = 2;          ///< executor threads for jobs
};

/// The loop itself.  start() binds 127.0.0.1 and spawns the loop and
/// executor threads; stop() tears everything down (idempotent).  The
/// handler and callbacks must outlive the loop.
class EventLoop {
public:
    /// `oversized_encoder(complete)` produces the error frame for an
    /// over-limit request line (complete frames leave the connection
    /// usable; unterminated overruns close it) — supplied by the owner
    /// so the transport stays protocol-agnostic and the owner can count
    /// the error.  `on_shutdown` fires on the loop thread after a
    /// shutdown ack has fully flushed to its client.
    EventLoop(EventLoopConfig config, FrameHandler handler,
              std::function<std::string(bool complete)> oversized_encoder,
              std::function<void()> on_shutdown);
    ~EventLoop();  ///< calls stop()

    EventLoop(const EventLoop&) = delete;
    EventLoop& operator=(const EventLoop&) = delete;

    /// Throws chiplet::Error when the socket cannot be created or bound.
    void start();
    void stop();

    [[nodiscard]] unsigned short port() const;
    [[nodiscard]] bool accepting() const;
    [[nodiscard]] const LoopCounters& counters() const;

private:
    struct Impl;
    Impl* impl_;
};

}  // namespace chiplet::serve
