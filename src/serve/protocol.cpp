#include "serve/protocol.h"

#include <utility>

#include "explore/study_json.h"
#include "util/error.h"

namespace chiplet::serve {

namespace {

JsonValue failure_to_json(const explore::StudyFailure& f) {
    JsonValue v = JsonValue::object();
    v.set("index", static_cast<double>(f.index));
    v.set("name", f.name);
    v.set("stage", f.stage);
    v.set("message", f.message);
    return v;
}

}  // namespace

std::string to_string(Verb verb) {
    switch (verb) {
        case Verb::run: return "run";
        case Verb::ping: return "ping";
        case Verb::stats: return "stats";
        case Verb::shutdown: return "shutdown";
    }
    return "run";
}

Request parse_request(const std::string& line) {
    const JsonValue doc = JsonValue::parse(line);  // throws ParseError
    if (!doc.is_object()) {
        throw ParseError("request: expected a JSON object, got " +
                         std::string(type_name(doc.type())));
    }
    Request request;
    if (doc.contains("op")) {
        const JsonValue& op = doc.at("op");
        if (!op.is_string()) {
            throw ParseError("request: key 'op': expected string, got " +
                             std::string(type_name(op.type())));
        }
        const std::string& name = op.as_string();
        if (name == "run") {
            request.verb = Verb::run;
        } else if (name == "ping") {
            request.verb = Verb::ping;
        } else if (name == "stats") {
            request.verb = Verb::stats;
        } else if (name == "shutdown") {
            request.verb = Verb::shutdown;
        } else {
            throw ParseError("request: unknown op '" + name +
                             "' (expected one of: run, ping, stats, shutdown)");
        }
    }
    if (request.verb != Verb::run) return request;
    if (!doc.contains("studies")) {
        throw ParseError(
            "request: expected a 'studies' array or an 'op' verb");
    }
    // The request body is the studies-file document shape, so the
    // collecting loader applies directly; bad entries become per-study
    // failures instead of failing the frame.
    request.studies = explore::studies_from_json_collecting(
        doc, "request", request.bad_studies, &request.study_indices);
    return request;
}

JsonValue cache_stats_to_json(const explore::StudyCache::Stats& s) {
    JsonValue v = JsonValue::object();
    v.set("hits", static_cast<double>(s.hits));
    v.set("misses", static_cast<double>(s.misses));
    v.set("collisions", static_cast<double>(s.collisions));
    v.set("insertions", static_cast<double>(s.insertions));
    v.set("evictions", static_cast<double>(s.evictions));
    v.set("rejected", static_cast<double>(s.rejected));
    v.set("entries", static_cast<double>(s.entries));
    v.set("bytes", static_cast<double>(s.bytes));
    return v;
}

JsonValue failures_to_json(std::span<const explore::StudyFailure> failures) {
    JsonValue v = JsonValue::array();
    for (const explore::StudyFailure& f : failures) {
        v.push_back(failure_to_json(f));
    }
    return v;
}

std::string encode_run_response(std::span<const explore::StudyResult> results,
                                std::span<const explore::StudyFailure> failures,
                                const RunMeta& meta) {
    JsonValue entries = JsonValue::array();
    for (const explore::StudyResult& result : results) {
        entries.push_back(explore::to_json(result));
    }
    JsonValue meta_json = JsonValue::object();
    meta_json.set("cache", cache_stats_to_json(meta.cache));
    meta_json.set("threads", meta.threads);
    meta_json.set("wall_ms", meta.wall_ms);
    meta_json.set("served_from_cache",
                  static_cast<double>(meta.served_from_cache));
    meta_json.set("with_ledgers", static_cast<double>(meta.with_ledgers));

    JsonValue v = JsonValue::object();
    v.set("results", std::move(entries));
    v.set("failures", failures_to_json(failures));
    v.set("meta", std::move(meta_json));
    return v.dump();
}

std::string encode_ok(Verb verb) {
    JsonValue v = JsonValue::object();
    v.set("op", to_string(verb));
    v.set("ok", true);
    return v.dump();
}

std::string encode_stats_response(const explore::StudyCache::Stats& cache,
                                  std::uint64_t connections,
                                  std::uint64_t requests, std::uint64_t errors,
                                  std::uint64_t ledger_results,
                                  unsigned threads) {
    JsonValue server = JsonValue::object();
    server.set("connections", static_cast<double>(connections));
    server.set("requests", static_cast<double>(requests));
    server.set("errors", static_cast<double>(errors));
    server.set("ledger_results", static_cast<double>(ledger_results));

    JsonValue v = JsonValue::object();
    v.set("op", to_string(Verb::stats));
    v.set("ok", true);
    v.set("cache", cache_stats_to_json(cache));
    v.set("server", std::move(server));
    v.set("threads", threads);
    return v.dump();
}

std::string encode_error(const std::string& code, const std::string& message) {
    JsonValue error = JsonValue::object();
    error.set("code", code);
    error.set("message", message);
    JsonValue v = JsonValue::object();
    v.set("error", std::move(error));
    return v.dump();
}

std::string encode_run_request(std::span<const explore::StudySpec> specs) {
    return explore::studies_to_json(specs).dump();
}

std::string encode_verb_request(Verb verb) {
    JsonValue v = JsonValue::object();
    v.set("op", to_string(verb));
    return v.dump();
}

}  // namespace chiplet::serve
