#include "serve/protocol.h"

#include <array>
#include <utility>

#include "explore/study_json.h"
#include "util/error.h"

namespace chiplet::serve {

namespace {

constexpr const char* kVerbNames[] = {"run",     "ping",   "stats",
                                      "metrics", "health", "shutdown"};

std::string verb_choices() {
    std::string out;
    for (const char* name : kVerbNames) {
        if (!out.empty()) out += ", ";
        out += name;
    }
    return out;
}

JsonValue failure_to_json(const explore::StudyFailure& f) {
    JsonValue v = JsonValue::object();
    v.set("index", static_cast<double>(f.index));
    v.set("name", f.name);
    v.set("stage", f.stage);
    v.set("message", f.message);
    return v;
}

/// Response root with the request's envelope applied: v1 responses open
/// with {"v":1,"id":<echoed>,...}; a v0 envelope adds nothing, keeping
/// those responses byte-identical to the unversioned protocol.
JsonValue response_root(const Envelope& envelope) {
    JsonValue v = JsonValue::object();
    if (envelope.version >= 1) {
        v.set("v", envelope.version);
        if (envelope.has_id) v.set("id", envelope.id);
    }
    return v;
}

}  // namespace

std::string to_string(Verb verb) {
    return kVerbNames[static_cast<std::size_t>(verb)];
}

Request parse_request(const std::string& line, Envelope* envelope_out) {
    // Canonical heartbeat frames skip the JSON parser entirely: both the
    // client library and the bench emit exactly these bytes, and under a
    // pipelined burst the parse is the dominant per-frame cost.
    if (line == R"({"op":"ping"})" || line == R"({"verb":"ping"})") {
        Request request;
        request.verb = Verb::ping;
        if (envelope_out) *envelope_out = request.envelope;
        return request;
    }
    const JsonValue doc = JsonValue::parse(line);  // throws ParseError
    if (!doc.is_object()) {
        throw ParseError("request: expected a JSON object, got " +
                         std::string(type_name(doc.type())));
    }
    Request request;
    // Envelope first — and publish it before any verb validation, so an
    // error response to a malformed v1 frame can still echo the id.
    if (doc.contains("v")) {
        const JsonValue& v = doc.at("v");
        if (!v.is_number() ||
            v.as_number() != static_cast<double>(kProtocolVersion)) {
            throw ParseError("request: unsupported protocol version (this "
                             "server speaks v" +
                             std::to_string(kProtocolVersion) +
                             " and unversioned v0 frames)");
        }
        request.envelope.version = kProtocolVersion;
    }
    if (doc.contains("id")) {
        request.envelope.has_id = true;
        request.envelope.id = doc.at("id");
    }
    if (envelope_out) *envelope_out = request.envelope;

    // "verb" is the v1 spelling, "op" the v0 one; either works at
    // either version.
    const char* verb_key =
        doc.contains("verb") ? "verb" : (doc.contains("op") ? "op" : nullptr);
    if (verb_key) {
        const JsonValue& op = doc.at(verb_key);
        if (!op.is_string()) {
            throw ParseError("request: key '" + std::string(verb_key) +
                             "': expected string, got " +
                             std::string(type_name(op.type())));
        }
        const std::string& name = op.as_string();
        bool known = false;
        for (std::size_t i = 0; i < std::size(kVerbNames); ++i) {
            if (name == kVerbNames[i]) {
                request.verb = static_cast<Verb>(i);
                known = true;
                break;
            }
        }
        if (!known) {
            throw ParseError("request: unknown " + std::string(verb_key) +
                             " '" + name + "' (expected one of: " +
                             verb_choices() + ")");
        }
    }
    if (request.verb != Verb::run) return request;
    if (!doc.contains("studies")) {
        throw ParseError(
            "request: expected a 'studies' array or a verb (one of: " +
            verb_choices() + ")");
    }
    // The request body is the studies-file document shape, so the
    // collecting loader applies directly; bad entries become per-study
    // failures instead of failing the frame.
    request.studies = explore::studies_from_json_collecting(
        doc, "request", request.bad_studies, &request.study_indices);
    return request;
}

JsonValue cache_stats_to_json(const explore::StudyCache::Stats& s) {
    JsonValue v = JsonValue::object();
    v.set("hits", static_cast<double>(s.hits));
    v.set("misses", static_cast<double>(s.misses));
    v.set("collisions", static_cast<double>(s.collisions));
    v.set("insertions", static_cast<double>(s.insertions));
    v.set("evictions", static_cast<double>(s.evictions));
    v.set("rejected", static_cast<double>(s.rejected));
    v.set("entries", static_cast<double>(s.entries));
    v.set("bytes", static_cast<double>(s.bytes));
    const double probes =
        static_cast<double>(s.hits) + static_cast<double>(s.misses);
    v.set("hit_rate", probes > 0.0 ? static_cast<double>(s.hits) / probes : 0.0);
    return v;
}

namespace {

JsonValue graph_stats_to_json(const explore::StudyGraphStats& g) {
    JsonValue v = JsonValue::object();
    v.set("spec_dedups", static_cast<double>(g.spec_dedups));
    v.set("cell_refs", static_cast<double>(g.cell_refs));
    v.set("unique_cells", static_cast<double>(g.unique_cells));
    v.set("deduped_cells", static_cast<double>(g.deduped_cells));
    v.set("dedup_ratio", g.dedup_ratio());
    v.set("store_hits", static_cast<double>(g.store_hits));
    v.set("store_misses", static_cast<double>(g.store_misses));
    v.set("store_hit_rate", g.store_hit_rate());
    return v;
}

JsonValue cell_stats_to_json(const explore::CellStore::Stats& s) {
    JsonValue v = JsonValue::object();
    v.set("hits", static_cast<double>(s.hits));
    v.set("misses", static_cast<double>(s.misses));
    v.set("collisions", static_cast<double>(s.collisions));
    v.set("insertions", static_cast<double>(s.insertions));
    v.set("evictions", static_cast<double>(s.evictions));
    v.set("rejected", static_cast<double>(s.rejected));
    v.set("entries", static_cast<double>(s.entries));
    v.set("bytes", static_cast<double>(s.bytes));
    v.set("hit_rate", s.hit_rate());
    return v;
}

}  // namespace

JsonValue failures_to_json(std::span<const explore::StudyFailure> failures) {
    JsonValue v = JsonValue::array();
    for (const explore::StudyFailure& f : failures) {
        v.push_back(failure_to_json(f));
    }
    return v;
}

std::string encode_run_response(const JsonArray& result_docs,
                                std::span<const explore::StudyFailure> failures,
                                const RunMeta& meta, const Envelope& envelope) {
    JsonValue entries = JsonValue::array();
    for (const JsonValue& doc : result_docs) entries.push_back(doc);
    JsonValue meta_json = JsonValue::object();
    meta_json.set("cache", cache_stats_to_json(meta.cache));
    meta_json.set("threads", meta.threads);
    meta_json.set("wall_ms", meta.wall_ms);
    meta_json.set("served_from_cache",
                  static_cast<double>(meta.served_from_cache));
    meta_json.set("with_ledgers", static_cast<double>(meta.with_ledgers));
    meta_json.set("dispatched", static_cast<double>(meta.dispatched));
    meta_json.set("graph", graph_stats_to_json(meta.graph));

    JsonValue v = response_root(envelope);
    v.set("results", std::move(entries));
    v.set("failures", failures_to_json(failures));
    v.set("meta", std::move(meta_json));
    return v.dump();
}

std::string encode_ok(Verb verb, const Envelope& envelope) {
    if (envelope.version == 0 && !envelope.has_id) {
        // v0 acks carry no envelope state, so the bytes per verb never
        // change — memoise them once instead of re-encoding per frame.
        static const std::array<std::string, std::size(kVerbNames)> cached =
            [] {
                std::array<std::string, std::size(kVerbNames)> out;
                for (std::size_t i = 0; i < out.size(); ++i) {
                    JsonValue v = JsonValue::object();
                    v.set("op", kVerbNames[i]);
                    v.set("ok", true);
                    out[i] = v.dump();
                }
                return out;
            }();
        return cached[static_cast<std::size_t>(verb)];
    }
    JsonValue v = response_root(envelope);
    v.set("op", to_string(verb));
    v.set("ok", true);
    return v.dump();
}

std::string encode_stats_response(const explore::StudyCache::Stats& cache,
                                  const explore::CellStore::Stats& cells,
                                  std::uint64_t connections,
                                  std::uint64_t requests, std::uint64_t errors,
                                  std::uint64_t ledger_results,
                                  const explore::StudyGraphStats& graph,
                                  unsigned threads,
                                  const std::string& model_version,
                                  const Envelope& envelope) {
    JsonValue server = JsonValue::object();
    server.set("connections", static_cast<double>(connections));
    server.set("requests", static_cast<double>(requests));
    server.set("errors", static_cast<double>(errors));
    server.set("ledger_results", static_cast<double>(ledger_results));

    JsonValue v = response_root(envelope);
    v.set("op", to_string(Verb::stats));
    v.set("ok", true);
    v.set("cache", cache_stats_to_json(cache));
    v.set("cells", cell_stats_to_json(cells));
    v.set("server", std::move(server));
    v.set("graph", graph_stats_to_json(graph));
    v.set("model_version", model_version);
    v.set("threads", threads);
    return v.dump();
}

std::string encode_metrics_response(const MetricsSnapshot& metrics,
                                    const Envelope& envelope) {
    JsonValue server = JsonValue::object();
    server.set("connections", static_cast<double>(metrics.connections));
    server.set("requests", static_cast<double>(metrics.requests));
    server.set("errors", static_cast<double>(metrics.errors));
    server.set("ledger_results", static_cast<double>(metrics.ledger_results));
    server.set("dispatched", static_cast<double>(metrics.dispatched));

    JsonValue loop = JsonValue::object();
    loop.set("connections_live",
             static_cast<double>(metrics.connections_live));
    loop.set("in_flight", static_cast<double>(metrics.in_flight));
    loop.set("queued_frames", static_cast<double>(metrics.queued_frames));
    loop.set("output_queue_bytes",
             static_cast<double>(metrics.output_queue_bytes));
    loop.set("peak_output_queue_bytes",
             static_cast<double>(metrics.peak_output_queue_bytes));
    loop.set("backpressure_stalls",
             static_cast<double>(metrics.backpressure_stalls));
    loop.set("idle_disconnects",
             static_cast<double>(metrics.idle_disconnects));
    loop.set("pipelined_frames",
             static_cast<double>(metrics.pipelined_frames));

    // Lifetime study-compiler counters; the same shape as the per-batch
    // "graph" object of run responses.
    explore::StudyGraphStats graph;
    graph.spec_dedups = metrics.graph_spec_dedups;
    graph.cell_refs = metrics.graph_cell_refs;
    graph.unique_cells = metrics.graph_unique_cells;
    graph.deduped_cells = metrics.graph_deduped_cells;
    graph.store_hits = metrics.graph_store_hits;
    graph.store_misses = metrics.graph_store_misses;

    JsonValue disk = JsonValue::object();
    disk.set("persistent", metrics.persistent);
    disk.set("loaded", static_cast<double>(metrics.disk.loaded));
    disk.set("stale", static_cast<double>(metrics.disk.stale));
    disk.set("corrupt", static_cast<double>(metrics.disk.corrupt));
    disk.set("writes", static_cast<double>(metrics.disk.writes));
    disk.set("write_failures",
             static_cast<double>(metrics.disk.write_failures));

    JsonValue v = response_root(envelope);
    v.set("op", to_string(Verb::metrics));
    v.set("ok", true);
    v.set("server", std::move(server));
    v.set("loop", std::move(loop));
    v.set("graph", graph_stats_to_json(graph));
    v.set("cache", cache_stats_to_json(metrics.cache));
    v.set("cells", cell_stats_to_json(metrics.cells));
    v.set("disk", std::move(disk));
    v.set("model_version", metrics.model_version);
    v.set("threads", metrics.threads);
    return v.dump();
}

std::string encode_health_response(bool accepting,
                                   std::uint64_t connections_live,
                                   std::uint64_t in_flight,
                                   const Envelope& envelope) {
    JsonValue v = response_root(envelope);
    v.set("op", to_string(Verb::health));
    v.set("ok", true);
    v.set("status", accepting ? "serving" : "draining");
    v.set("connections", static_cast<double>(connections_live));
    v.set("in_flight", static_cast<double>(in_flight));
    return v.dump();
}

std::string encode_error(const std::string& code, const std::string& message,
                         const Envelope& envelope) {
    JsonValue error = JsonValue::object();
    error.set("code", code);
    error.set("message", message);
    JsonValue v = response_root(envelope);
    v.set("error", std::move(error));
    return v.dump();
}

std::string encode_run_request(std::span<const explore::StudySpec> specs) {
    return explore::studies_to_json(specs).dump();
}

std::string encode_verb_request(Verb verb) {
    JsonValue v = JsonValue::object();
    v.set("op", to_string(verb));
    return v.dump();
}

}  // namespace chiplet::serve
