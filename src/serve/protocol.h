// Wire protocol of the actuaryd evaluation service: newline-framed JSON
// over a local TCP stream.  One request per line, one response line per
// request, connection reusable for any number of requests.
//
// Requests:
//   {"studies":[ <study spec>, ... ]}        run a batch (op optional)
//   {"op":"ping"}                            liveness probe
//   {"op":"stats"}                           cache + server counters
//   {"op":"shutdown"}                        ack, then stop the server
//
// Responses:
//   run      {"results":[...],"failures":[...],"meta":{"cache":{...},
//             "threads":N,"wall_ms":X,"served_from_cache":K,
//             "with_ledgers":L}}
//            "results" entries are exactly the Study API result
//            envelopes (explore/study_json.h), bit-identical to a
//            serial run_study of the same specs; "failures" lists bad
//            studies ({"index","name","stage","message"}).
//   ping     {"op":"ping","ok":true}
//   stats    {"op":"stats","ok":true,"cache":{...},"server":{...
//             incl. "ledger_results"},"threads":N}
//   shutdown {"op":"shutdown","ok":true}
//   error    {"error":{"code":"parse"|"model"|"oversized"|"internal",
//             "message":"..."}}   (the connection survives except for
//             "oversized", whose frame can never be resynchronised)
//
// This header is pure string <-> struct translation — no sockets — so
// the protocol is testable without a live server (see serve/server.h
// for transport).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "explore/study.h"
#include "explore/study_cache.h"
#include "util/json.h"

namespace chiplet::serve {

/// Port actuary_cli serve/client default to when --port is not given.
inline constexpr unsigned short kDefaultPort = 9217;

/// Frame delimiter; responses are terminated with it too.
inline constexpr char kFrameDelimiter = '\n';

enum class Verb { run, ping, stats, shutdown };

[[nodiscard]] std::string to_string(Verb verb);

/// A decoded request line.  For Verb::run, `studies` holds the specs
/// that parsed, `study_indices[i]` their position in the request's
/// "studies" array, and `bad_studies` the per-study parse failures
/// (stage "parse", document indices) — a batch with bad entries still
/// runs the good ones.
struct Request {
    Verb verb = Verb::run;
    std::vector<explore::StudySpec> studies;
    std::vector<std::size_t> study_indices;
    std::vector<explore::StudyFailure> bad_studies;
};

/// Decodes one frame (without the trailing newline).  Throws ParseError
/// for malformed JSON, a non-object, an unknown "op", or a run request
/// with no "studies" array.
[[nodiscard]] Request parse_request(const std::string& line);

/// Measurement attached to a run response; never part of the
/// bit-identical surface.
struct RunMeta {
    explore::StudyCache::Stats cache;  ///< cumulative server-cache stats
    unsigned threads = 0;              ///< global pool size
    double wall_ms = 0.0;              ///< request wall time
    std::uint64_t served_from_cache = 0;  ///< hits within this request
    /// Results in this request that carried itemised cost ledgers
    /// (explain studies).
    std::uint64_t with_ledgers = 0;
};

[[nodiscard]] JsonValue cache_stats_to_json(const explore::StudyCache::Stats& s);
[[nodiscard]] JsonValue failures_to_json(
    std::span<const explore::StudyFailure> failures);

[[nodiscard]] std::string encode_run_response(
    std::span<const explore::StudyResult> results,
    std::span<const explore::StudyFailure> failures, const RunMeta& meta);
[[nodiscard]] std::string encode_ok(Verb verb);
[[nodiscard]] std::string encode_stats_response(
    const explore::StudyCache::Stats& cache, std::uint64_t connections,
    std::uint64_t requests, std::uint64_t errors, std::uint64_t ledger_results,
    unsigned threads);
[[nodiscard]] std::string encode_error(const std::string& code,
                                       const std::string& message);

/// Client-side encoders (no trailing newline; the transport appends it).
[[nodiscard]] std::string encode_run_request(
    std::span<const explore::StudySpec> specs);
[[nodiscard]] std::string encode_verb_request(Verb verb);

}  // namespace chiplet::serve
