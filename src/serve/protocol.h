// Wire protocol of the actuaryd evaluation service: newline-framed JSON
// over a local TCP stream.  One request per line, one response line per
// request, connection reusable for any number of requests; requests may
// be pipelined (many frames written before the first response is read)
// and responses always come back in request order.
//
// Two request shapes share the wire:
//
//   v0 (legacy, unversioned — byte-compatible with PR 4):
//     {"studies":[ <study spec>, ... ]}        run a batch (op optional)
//     {"op":"ping"}                            liveness probe
//     {"op":"stats"}                           cache + server counters
//     {"op":"metrics"}                         loop gauges for balancers
//     {"op":"health"}                          accepting / draining
//     {"op":"shutdown"}                        ack, then stop the server
//
//   v1 (versioned envelope):
//     {"v":1,"id":<any>,"verb":"run","studies":[...]}
//     {"v":1,"id":<any>,"verb":"ping"}         ... and so on per verb
//
//   A v1 response opens with {"v":1,"id":<echoed>,...} so pipelined
//   replies are matchable by id; v0 responses carry neither key and are
//   byte-identical to the pre-v1 protocol.  "verb" and "op" are
//   accepted interchangeably at either version.  Unknown verbs return a
//   structured "parse" error listing the valid verbs.
//
// Responses:
//   run      {"results":[...],"failures":[...],"meta":{"cache":{...},
//             "threads":N,"wall_ms":X,"served_from_cache":K,
//             "with_ledgers":L,"dispatched":D}}
//            "results" entries are exactly the Study API result
//            envelopes (explore/study_json.h), bit-identical to a
//            serial run_study of the same specs; "failures" lists bad
//            studies ({"index","name","stage","message"}).
//   ping     {"op":"ping","ok":true}
//   stats    {"op":"stats","ok":true,"cache":{... incl. "hit_rate"},
//             "cells":{... lifetime cross-study cell store, incl.
//             "hit_rate"},"server":{... incl. "ledger_results"},
//             "graph":{... incl. "store_hits"/"store_hit_rate"},
//             "model_version":"...","threads":N}
//   metrics  {"op":"metrics","ok":true,"server":{...},"loop":{...},
//             "cache":{...},"cells":{...},"disk":{"persistent":B,
//             "loaded","stale","corrupt","writes","write_failures"},
//             "model_version":"...","threads":N}
//   health   {"op":"health","ok":true,"status":"serving"|"draining",
//             "connections":C,"in_flight":F}
//   shutdown {"op":"shutdown","ok":true}
//   error    {"error":{"code":"parse"|"model"|"dispatch"|"oversized"|
//             "internal","message":"..."}}   (the connection survives
//             except for "oversized" frames that never completed —
//             those can never be resynchronised)
//
// This header is pure string <-> struct translation — no sockets — so
// the protocol is testable without a live server (see serve/server.h
// for transport).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "explore/cache_store.h"
#include "explore/cell_store.h"
#include "explore/study.h"
#include "explore/study_cache.h"
#include "util/json.h"

namespace chiplet::serve {

/// Port actuary_cli serve/client default to when --port is not given.
inline constexpr unsigned short kDefaultPort = 9217;

/// Frame delimiter; responses are terminated with it too.
inline constexpr char kFrameDelimiter = '\n';

/// Highest protocol version this build speaks.
inline constexpr int kProtocolVersion = 1;

enum class Verb { run, ping, stats, metrics, health, shutdown };

[[nodiscard]] std::string to_string(Verb verb);

/// The versioned envelope of one request, echoed into its response.
/// Default-constructed = a v0 frame: responses carry no "v"/"id" keys
/// and stay byte-identical to the unversioned protocol.
struct Envelope {
    int version = 0;    ///< 0 = legacy unversioned frame
    bool has_id = false;
    JsonValue id;       ///< echoed verbatim (string, number, anything)
};

/// A decoded request line.  For Verb::run, `studies` holds the specs
/// that parsed, `study_indices[i]` their position in the request's
/// "studies" array, and `bad_studies` the per-study parse failures
/// (stage "parse", document indices) — a batch with bad entries still
/// runs the good ones.
struct Request {
    Envelope envelope;
    Verb verb = Verb::run;
    std::vector<explore::StudySpec> studies;
    std::vector<std::size_t> study_indices;
    std::vector<explore::StudyFailure> bad_studies;
};

/// Decodes one frame (without the trailing newline).  Throws ParseError
/// for malformed JSON, a non-object, an unsupported "v", an unknown
/// "verb"/"op", or a run request with no "studies" array.  When
/// `envelope_out` is given it is filled as soon as the envelope has
/// been read — before any verb/studies validation — so error responses
/// to malformed v1 frames can still echo the request id.
[[nodiscard]] Request parse_request(const std::string& line,
                                    Envelope* envelope_out = nullptr);

/// Measurement attached to a run response; never part of the
/// bit-identical surface.
struct RunMeta {
    explore::StudyCache::Stats cache;  ///< cumulative server-cache stats
    unsigned threads = 0;              ///< global pool size
    double wall_ms = 0.0;              ///< request wall time
    std::uint64_t served_from_cache = 0;  ///< hits within this request
    /// Results in this request that carried itemised cost ledgers
    /// (explain studies).
    std::uint64_t with_ledgers = 0;
    /// Studies in this request answered by range-sharded dispatch to
    /// workers instead of local evaluation.
    std::uint64_t dispatched = 0;
    /// Study-compiler accounting for this request's locally evaluated
    /// batch (explore/study_graph.h): spec dedups, cell refs vs unique
    /// cells.
    explore::StudyGraphStats graph;
};

/// Everything behind the "metrics" verb: cumulative server counters,
/// instantaneous event-loop gauges, and lifetime loop counters — the
/// numbers a load balancer (or the backpressure tests) wants.
struct MetricsSnapshot {
    // -- server counters, lifetime ----------------------------------------
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t ledger_results = 0;
    std::uint64_t dispatched = 0;
    // -- loop gauges, instantaneous ---------------------------------------
    std::uint64_t connections_live = 0;
    std::uint64_t in_flight = 0;          ///< frames being evaluated off-loop
    std::uint64_t queued_frames = 0;      ///< parsed frames awaiting their turn
    std::uint64_t output_queue_bytes = 0; ///< unsent response bytes, all conns
    // -- loop counters, lifetime ------------------------------------------
    std::uint64_t peak_output_queue_bytes = 0;  ///< worst single connection
    std::uint64_t backpressure_stalls = 0;  ///< reads paused on a full queue
    std::uint64_t idle_disconnects = 0;
    std::uint64_t pipelined_frames = 0;  ///< frames parsed beyond the first
                                         ///< of a read burst
    // -- study-compiler counters, lifetime sums over run requests ----------
    std::uint64_t graph_spec_dedups = 0;   ///< identical specs served as copies
    std::uint64_t graph_cell_refs = 0;     ///< cost-cell references enumerated
    std::uint64_t graph_unique_cells = 0;  ///< cells actually evaluated
    std::uint64_t graph_deduped_cells = 0; ///< refs served by sharing
    /// Cross-study cell memoisation (explore/cell_store.h): of the
    /// unique cells compiled across every run request, how many an
    /// earlier batch had already priced.
    std::uint64_t graph_store_hits = 0;
    std::uint64_t graph_store_misses = 0;
    explore::StudyCache::Stats cache;
    /// Lifetime counters of the process-wide cell store itself.
    explore::CellStore::Stats cells;
    // -- persistence (explore/cache_store.h) -------------------------------
    bool persistent = false;  ///< a --cache-dir store is attached
    explore::StudyCacheStore::Stats disk;  ///< zeros when not persistent
    /// core::model_version_string() — schema + fingerprint stamped into
    /// persisted entries.
    std::string model_version;
    unsigned threads = 0;
};

[[nodiscard]] JsonValue cache_stats_to_json(const explore::StudyCache::Stats& s);
[[nodiscard]] JsonValue failures_to_json(
    std::span<const explore::StudyFailure> failures);

/// `result_docs` entries are already-serialised Study API result
/// envelopes — explore::to_json(StudyResult) for locally evaluated
/// studies, the dispatcher's merged envelope for sharded ones.
[[nodiscard]] std::string encode_run_response(
    const JsonArray& result_docs,
    std::span<const explore::StudyFailure> failures, const RunMeta& meta,
    const Envelope& envelope = {});
[[nodiscard]] std::string encode_ok(Verb verb, const Envelope& envelope = {});
/// `graph` carries the lifetime sums of the study-compiler counters
/// (cell_refs / unique_cells / deduped_cells / spec_dedups, plus the
/// cross-study store_hits / store_misses) across every run request
/// served; `cells` is the process-wide cell store's own lifetime view
/// and `model_version` the stamp persisted entries carry.
[[nodiscard]] std::string encode_stats_response(
    const explore::StudyCache::Stats& cache,
    const explore::CellStore::Stats& cells, std::uint64_t connections,
    std::uint64_t requests, std::uint64_t errors, std::uint64_t ledger_results,
    const explore::StudyGraphStats& graph, unsigned threads,
    const std::string& model_version, const Envelope& envelope = {});
[[nodiscard]] std::string encode_metrics_response(
    const MetricsSnapshot& metrics, const Envelope& envelope = {});
[[nodiscard]] std::string encode_health_response(
    bool accepting, std::uint64_t connections_live, std::uint64_t in_flight,
    const Envelope& envelope = {});
[[nodiscard]] std::string encode_error(const std::string& code,
                                       const std::string& message,
                                       const Envelope& envelope = {});

/// Client-side encoders (no trailing newline; the transport appends it).
[[nodiscard]] std::string encode_run_request(
    std::span<const explore::StudySpec> specs);
[[nodiscard]] std::string encode_verb_request(Verb verb);

}  // namespace chiplet::serve
