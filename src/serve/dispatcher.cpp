#include "serve/dispatcher.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>
#include <variant>

#include "explore/design_space.h"
#include "explore/study_json.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "tech/json_io.h"
#include "util/error.h"
#include "util/json.h"

namespace chiplet::serve {

namespace {

struct Shard {
    WorkerAddress worker;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
};

/// One merged ranking entry: the ordering keys parsed out of a worker
/// payload plus the worker's serialised forms, passed through verbatim
/// so the merge never re-rounds a number the worker already printed.
struct MergeEntry {
    double total = 0.0;
    double index = 0.0;
    JsonValue best;  ///< the worker's "best" entry, byte-exact
    JsonValue row;   ///< the aligned table row; only rank is rewritten
};

std::string trimmed(const std::string& s) {
    const std::size_t first = s.find_first_not_of(" \t");
    if (first == std::string::npos) return "";
    const std::size_t last = s.find_last_not_of(" \t");
    return s.substr(first, last - first + 1);
}

/// Runs one shard against its worker and returns the single result
/// envelope from the response.  Throws Error describing what the worker
/// did wrong (refused, died mid-study, reported a failure, answered
/// with the wrong shape).
JsonValue call_worker(const Shard& shard, const std::string& request,
                      unsigned timeout_seconds) {
    StudyClient client(shard.worker.host, shard.worker.port, timeout_seconds);
    const JsonValue response = client.call(request);
    if (response.contains("error")) {
        const JsonValue& error = response.at("error");
        throw Error("worker " + shard.worker.label() + " answered with " +
                    error.at("code").as_string() + ": " +
                    error.at("message").as_string());
    }
    const JsonArray& failures = response.at("failures").as_array();
    if (!failures.empty()) {
        throw Error("worker " + shard.worker.label() + " failed its shard (" +
                    failures.front().at("stage").as_string() + "): " +
                    failures.front().at("message").as_string());
    }
    const JsonArray& results = response.at("results").as_array();
    if (results.size() != 1) {
        throw Error("worker " + shard.worker.label() + " returned " +
                    std::to_string(results.size()) +
                    " results for a 1-study shard");
    }
    return results.front();
}

}  // namespace

std::vector<WorkerAddress> parse_worker_list(const std::string& text) {
    std::vector<WorkerAddress> workers;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string entry = trimmed(
            text.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos));
        pos = comma == std::string::npos ? text.size() + 1 : comma + 1;
        if (entry.empty()) {
            if (comma == std::string::npos && workers.empty() &&
                trimmed(text).empty()) {
                break;
            }
            throw ParseError("dispatch: empty worker entry in '" + text + "'");
        }
        WorkerAddress w;
        const std::size_t colon = entry.rfind(':');
        std::string port_text = entry;
        if (colon != std::string::npos) {
            const std::string host = trimmed(entry.substr(0, colon));
            if (!host.empty()) w.host = host;
            port_text = trimmed(entry.substr(colon + 1));
        }
        double parsed = 0.0;
        if (!parse_full_number(port_text, parsed) || parsed < 1 ||
            parsed > 65535 || parsed != static_cast<unsigned>(parsed)) {
            throw ParseError("dispatch: bad worker port '" + entry +
                             "' (expected host:port with port 1..65535)");
        }
        w.port = static_cast<unsigned short>(parsed);
        workers.push_back(std::move(w));
    }
    if (workers.empty()) {
        throw ParseError("dispatch: worker list is empty");
    }
    return workers;
}

bool Dispatcher::can_shard(const explore::StudySpec& spec) {
    return spec.kind() == explore::StudyKind::design_space && !spec.explain;
}

JsonValue Dispatcher::run_sharded(const core::ChipletActuary& actuary,
                                  const explore::StudySpec& spec) const {
    CHIPLET_EXPECTS(can_shard(spec),
                    "dispatch: only non-explain design_space studies shard");
    const auto start = std::chrono::steady_clock::now();
    const auto& config = std::get<explore::DesignSpaceConfig>(spec.config);

    // Size the space exactly as the workers will: against the spec's
    // overridden library when one is attached.
    std::optional<core::ChipletActuary> patched;
    const core::ChipletActuary* sizing = &actuary;
    if (!spec.tech_overrides.is_null()) {
        tech::TechLibrary lib = actuary.library();
        tech::apply_overrides(lib, spec.tech_overrides,
                              "study '" + spec.name + "': tech");
        patched.emplace(std::move(lib), actuary.assumptions());
        sizing = &*patched;
    }
    const std::uint64_t space = explore::design_space_size(*sizing, config);
    const std::uint64_t begin = config.index_begin;
    const std::uint64_t end = config.index_end == 0 ? space : config.index_end;
    CHIPLET_EXPECTS(end <= space, "design space index_end is outside the space");
    CHIPLET_EXPECTS(begin <= end, "design space index_begin exceeds index_end");
    const std::uint64_t span = end - begin;

    // Contiguous, near-equal windows; a span smaller than the fleet
    // simply leaves trailing workers without a shard.
    std::vector<Shard> shards;
    const std::uint64_t fleet = config_.workers.size();
    const std::uint64_t per = fleet > 0 ? span / fleet : 0;
    const std::uint64_t extra = fleet > 0 ? span % fleet : 0;
    std::uint64_t cursor = begin;
    for (std::uint64_t i = 0; i < fleet; ++i) {
        const std::uint64_t len = per + (i < extra ? 1 : 0);
        if (len == 0) continue;
        shards.push_back(Shard{config_.workers[i], cursor, cursor + len});
        cursor += len;
    }
    if (shards.empty()) {
        // Empty window: nothing to farm out, and the local evaluation is
        // trivially bit-identical.
        return explore::to_json(explore::run_study(actuary, spec));
    }

    // One request per shard: the spec itself with the window narrowed.
    std::vector<std::string> requests;
    requests.reserve(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
        JsonValue sub = explore::to_json(spec);
        sub.at("config").set("index_begin",
                             static_cast<double>(shards[i].begin));
        sub.at("config").set("index_end", static_cast<double>(shards[i].end));
        JsonValue studies = JsonValue::array();
        studies.push_back(std::move(sub));
        JsonValue request = JsonValue::object();
        request.set("v", kProtocolVersion);
        request.set("id", static_cast<double>(i));
        request.set("verb", "run");
        request.set("studies", std::move(studies));
        requests.push_back(request.dump());
    }

    // All shards in flight at once — these threads spend their lives
    // blocked on worker sockets, so a thread apiece beats occupying the
    // evaluation pool.
    std::vector<JsonValue> docs(shards.size());
    std::vector<std::string> errors(shards.size());
    std::vector<std::thread> threads;
    threads.reserve(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
        threads.emplace_back([&, i] {
            try {
                docs[i] = call_worker(shards[i], requests[i],
                                      config_.timeout_seconds);
            } catch (const std::exception& e) {
                errors[i] = "dispatch: shard [" +
                            std::to_string(shards[i].begin) + ", " +
                            std::to_string(shards[i].end) + ") of study '" +
                            spec.name + "': " + e.what();
            }
        });
    }
    for (std::thread& t : threads) t.join();
    for (const std::string& error : errors) {
        if (!error.empty()) throw Error(error);
    }

    // Merge.  Keys are parsed only to order entries; the serialised
    // forms travel untouched.
    std::vector<MergeEntry> entries;
    std::uint64_t total_candidates = 0;
    std::uint64_t pruned = 0;
    std::uint64_t evaluated = 0;
    for (std::size_t i = 0; i < docs.size(); ++i) {
        const JsonValue& result = docs[i].at("result");
        total_candidates +=
            static_cast<std::uint64_t>(result.at("total_candidates").as_number());
        pruned += static_cast<std::uint64_t>(result.at("pruned").as_number());
        evaluated +=
            static_cast<std::uint64_t>(result.at("evaluated").as_number());
        const JsonArray& best = result.at("best").as_array();
        const JsonArray& rows =
            docs[i].at("table").at("rows").as_array();
        if (best.size() != rows.size()) {
            throw Error("dispatch: worker " + shards[i].worker.label() +
                        " returned a table misaligned with its ranking");
        }
        // Windowed runs publish lossless "order_keys" alongside the
        // 12-digit payload numbers; ordering on the exact doubles is
        // what makes the merged ranking reproduce the single-process
        // comparator even for candidates whose totals round to the same
        // printed text.
        const JsonArray* keys = nullptr;
        if (result.contains("order_keys")) {
            keys = &result.at("order_keys").as_array();
            if (keys->size() != best.size()) {
                throw Error("dispatch: worker " + shards[i].worker.label() +
                            " returned order_keys misaligned with its ranking");
            }
        }
        for (std::size_t j = 0; j < best.size(); ++j) {
            MergeEntry entry;
            entry.total = best[j].at("total_per_unit").as_number();
            if (keys != nullptr &&
                !parse_full_number((*keys)[j].as_string(), entry.total)) {
                throw Error("dispatch: worker " + shards[i].worker.label() +
                            " returned an unparsable order key");
            }
            entry.index = best[j].at("index").as_number();
            entry.best = best[j];
            entry.row = rows[j];
            entries.push_back(std::move(entry));
        }
    }
    // Same strict weak order as DesignSpace::cheaper(); indices are
    // globally unique, so the order is total and the sort deterministic.
    std::sort(entries.begin(), entries.end(),
              [](const MergeEntry& a, const MergeEntry& b) {
                  return a.total != b.total ? a.total < b.total
                                            : a.index < b.index;
              });
    if (config.top_k > 0 && entries.size() > config.top_k) {
        entries.resize(config.top_k);
    }

    JsonValue best_out = JsonValue::array();
    JsonValue rows_out = JsonValue::array();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        best_out.push_back(std::move(entries[i].best));
        JsonValue row = std::move(entries[i].row);
        // The rank cell is the row's position in the merged ranking —
        // the only cell whose value depends on which process ranked it.
        row.as_array()[0] = JsonValue(std::to_string(i + 1));
        rows_out.push_back(std::move(row));
    }

    JsonValue result_out = JsonValue::object();
    result_out.set("total_candidates", static_cast<double>(total_candidates));
    result_out.set("pruned", static_cast<double>(pruned));
    result_out.set("evaluated", static_cast<double>(evaluated));
    result_out.set("pruned_fraction",
                   total_candidates > 0
                       ? static_cast<double>(pruned) /
                             static_cast<double>(total_candidates)
                       : 0.0);
    result_out.set("best", std::move(best_out));
    // A spec that was itself windowed serialises order_keys when run in
    // one process, so the merged document carries them too; whole-space
    // specs must not gain the field.
    if (config.index_begin > 0 || config.index_end > 0) {
        JsonValue keys_out = JsonValue::array();
        for (const MergeEntry& entry : entries) {
            keys_out.push_back(exact_number_string(entry.total));
        }
        result_out.set("order_keys", std::move(keys_out));
    }

    JsonValue table_out = JsonValue::object();
    table_out.set("columns", docs.front().at("table").at("columns"));
    table_out.set("rows", std::move(rows_out));

    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    JsonValue meta = JsonValue::object();
    meta.set("wall_seconds", wall_seconds);
    meta.set("threads", static_cast<unsigned>(shards.size()));
    meta.set("cache_hits", 0.0);
    meta.set("cache_misses", 0.0);
    meta.set("cache_hit_rate", 0.0);
    meta.set("from_cache", false);
    meta.set("with_ledgers", false);

    JsonValue envelope = JsonValue::object();
    envelope.set("name", spec.name);
    envelope.set("kind", explore::to_string(explore::StudyKind::design_space));
    envelope.set("meta", std::move(meta));
    envelope.set("table", std::move(table_out));
    envelope.set("result", std::move(result_out));
    return envelope;
}

}  // namespace chiplet::serve
