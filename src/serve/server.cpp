#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "serve/protocol.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace chiplet::serve {

namespace {

/// send(2) until the whole buffer is out; false on a broken connection.
/// MSG_NOSIGNAL keeps a client that hung up from killing the server
/// with SIGPIPE.
bool send_all(int fd, const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool is_blank(const std::string& line) {
    return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

struct StudyServer::Impl {
    const core::ChipletActuary& actuary;
    ServerConfig config;
    explore::StudyCache cache;

    mutable std::mutex mutex;
    std::condition_variable shutdown_cv;
    int listen_fd = -1;
    unsigned short port = 0;
    bool running = false;
    bool shutdown_requested = false;
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t ledger_results = 0;
    std::unordered_set<int> conn_fds;
    std::thread accept_thread;
    // One thread per live connection, keyed by its fd.  A handler moves
    // its own thread object to `finished` on exit; the accept loop
    // joins that list before each new connection, so a long-lived
    // daemon does not accumulate a zombie thread per connection ever
    // served.  stop() joins whatever remains.
    std::unordered_map<int, std::thread> handlers;
    std::vector<std::thread> finished;

    explicit Impl(const core::ChipletActuary& a, ServerConfig c)
        : actuary(a),
          config(c),
          cache(explore::StudyCache::Config{c.cache_bytes, c.cache_shards, 64}) {}

    void accept_loop();
    void handle_connection(int fd);
    [[nodiscard]] std::string handle_line(const std::string& line,
                                          bool& close_after,
                                          bool& announce_shutdown);
    void shutdown_listener_locked();
};

// Only shutdown(2) here — never close(2): the accept thread may hold the
// fd number across an unlocked ::accept call, so the number must stay
// reserved (un-reusable by other sockets in this process) until stop()
// has joined that thread.  shutdown() wakes a blocked accept and makes
// the kernel refuse new connections, which is all teardown needs early.
void StudyServer::Impl::shutdown_listener_locked() {
    if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
}

void StudyServer::Impl::accept_loop() {
    for (;;) {
        int fd = -1;
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (!running || shutdown_requested || listen_fd < 0) return;
            fd = listen_fd;
        }
        const int conn = ::accept(fd, nullptr, nullptr);
        std::vector<std::thread> reap;
        bool alive = false;
        {
            std::lock_guard<std::mutex> lock(mutex);
            reap.swap(finished);
            alive = running && !shutdown_requested;
            if (conn >= 0 && alive) {
                conn_fds.insert(conn);
                ++connections;
                handlers.emplace(conn, std::thread([this, conn] {
                                     handle_connection(conn);
                                 }));
            } else if (conn >= 0) {
                ::close(conn);
            }
        }
        for (std::thread& t : reap) {
            if (t.joinable()) t.join();
        }
        if (!alive) return;
        if (conn < 0) {
            // EINTR, EMFILE/ENFILE and friends: back off briefly instead
            // of spinning the mutex at 100% CPU until the condition
            // clears (fd exhaustion can persist for a while).
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }
}

void StudyServer::Impl::handle_connection(int fd) {
    std::string buffer;
    char chunk[16384];
    bool open = true;
    while (open) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;  // disconnect (possibly mid-request) or stop()
        buffer.append(chunk, static_cast<std::size_t>(n));

        std::size_t pos;
        while (open && (pos = buffer.find(kFrameDelimiter)) != std::string::npos) {
            std::string line = buffer.substr(0, pos);
            buffer.erase(0, pos + 1);
            if (line.size() > config.max_line_bytes) {
                // The frame is complete, so the stream can resync: this
                // request is refused but the connection survives (an
                // unterminated overrun below cannot and closes it).
                if (!send_all(fd, encode_error(
                                      "oversized",
                                      "request line exceeds " +
                                          std::to_string(
                                              config.max_line_bytes) +
                                          " bytes") +
                                      kFrameDelimiter)) {
                    open = false;
                }
                std::lock_guard<std::mutex> lock(mutex);
                ++errors;
                continue;
            }
            if (is_blank(line)) continue;
            bool close_after = false;
            bool announce_shutdown = false;
            const std::string response =
                handle_line(line, close_after, announce_shutdown);
            if (!send_all(fd, response + kFrameDelimiter)) open = false;
            if (announce_shutdown) {
                // Wake wait() only now, with the ack already on the
                // wire: stop() severs connections, and doing that
                // before the send would eat the documented response.
                std::lock_guard<std::mutex> lock(mutex);
                shutdown_requested = true;
                shutdown_cv.notify_all();
            }
            if (close_after) open = false;
        }
        if (open && buffer.size() > config.max_line_bytes) {
            // The frame already exceeds the limit and has no newline in
            // sight: answer once and drop the connection — there is no
            // safe point to resynchronise at.
            (void)send_all(fd, encode_error("oversized",
                                            "request line exceeds " +
                                                std::to_string(
                                                    config.max_line_bytes) +
                                                " bytes") +
                                   kFrameDelimiter);
            {
                std::lock_guard<std::mutex> lock(mutex);
                ++errors;
            }
            open = false;
        }
    }
    ::shutdown(fd, SHUT_RDWR);
    {
        // Deregister before close(): once the fd number is free for
        // reuse, stop() must no longer be able to shut it down — and
        // the handlers slot for this fd must be vacant before accept
        // can hand the number to a new connection.  Moving our own
        // thread object to `finished` is safe: whoever joins it simply
        // waits out this function's epilogue.
        std::lock_guard<std::mutex> lock(mutex);
        conn_fds.erase(fd);
        const auto self = handlers.find(fd);
        if (self != handlers.end()) {
            finished.push_back(std::move(self->second));
            handlers.erase(self);
        }
    }
    ::close(fd);
}

std::string StudyServer::Impl::handle_line(const std::string& line,
                                           bool& close_after,
                                           bool& announce_shutdown) {
    using Clock = std::chrono::steady_clock;
    try {
        Request request = parse_request(line);
        switch (request.verb) {
            case Verb::ping:
                return encode_ok(Verb::ping);
            case Verb::stats: {
                std::uint64_t conns = 0;
                std::uint64_t reqs = 0;
                std::uint64_t errs = 0;
                std::uint64_t ledgers = 0;
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    conns = connections;
                    reqs = requests;
                    errs = errors;
                    ledgers = ledger_results;
                }
                return encode_stats_response(cache.stats(), conns, reqs, errs,
                                             ledgers,
                                             util::ThreadPool::global().size());
            }
            case Verb::shutdown: {
                // Stop accepting right away, but leave waking wait() to
                // the caller — after the ack is sent — so the owner's
                // stop() cannot cut this connection before the client
                // has its {"ok":true}.
                std::lock_guard<std::mutex> lock(mutex);
                shutdown_listener_locked();
                close_after = true;
                announce_shutdown = true;
                return encode_ok(Verb::shutdown);
            }
            case Verb::run: {
                const auto start = Clock::now();
                explore::StudyBatchOutcome outcome =
                    explore::run_studies_collecting(actuary, request.studies,
                                                    &cache);
                // Document-order failure report against the request's
                // original "studies" positions — byte-compatible with
                // what cmd_study prints for the same batch.
                const std::vector<explore::StudyFailure> failures =
                    explore::merge_failures(std::move(request.bad_studies),
                                            std::move(outcome.failures),
                                            request.study_indices);

                RunMeta meta;
                meta.cache = cache.stats();
                meta.threads = util::ThreadPool::global().size();
                meta.wall_ms =
                    std::chrono::duration<double, std::milli>(Clock::now() -
                                                              start)
                        .count();
                std::uint64_t with_ledgers = 0;
                for (const explore::StudyResult& r : outcome.results) {
                    if (r.run.from_cache) ++meta.served_from_cache;
                    if (r.run.with_ledgers) ++with_ledgers;
                }
                meta.with_ledgers = with_ledgers;
                {
                    // Counter only — encoding a large response under
                    // the server mutex would serialise every client.
                    // Per-study failures ride inside a *successful* run
                    // response, so they do not count toward `errors`
                    // (documented as error responses sent).
                    std::lock_guard<std::mutex> lock(mutex);
                    ++requests;
                    ledger_results += with_ledgers;
                }
                return encode_run_response(outcome.results, failures, meta);
            }
        }
        // Unreachable; every verb returns above.
        return encode_error("internal", "unhandled verb");
    } catch (const ParseError& e) {
        std::lock_guard<std::mutex> lock(mutex);
        ++errors;
        return encode_error("parse", e.what());
    } catch (const Error& e) {
        std::lock_guard<std::mutex> lock(mutex);
        ++errors;
        return encode_error("model", e.what());
    } catch (const std::exception& e) {
        // Defensive: nothing below should leak a non-chiplet exception,
        // but a serving process must answer rather than die.
        std::lock_guard<std::mutex> lock(mutex);
        ++errors;
        return encode_error("internal", e.what());
    }
}

StudyServer::StudyServer(const core::ChipletActuary& actuary,
                         ServerConfig config)
    : impl_(new Impl(actuary, config)) {}

StudyServer::~StudyServer() {
    stop();
    delete impl_;
}

void StudyServer::start() {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->running) return;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        throw Error(std::string("serve: socket() failed: ") +
                    std::strerror(errno));
    }
    const int reuse = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(impl_->config.port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd);
        throw Error("serve: cannot bind 127.0.0.1:" +
                    std::to_string(impl_->config.port) + ": " +
                    std::strerror(err));
    }
    if (::listen(fd, impl_->config.backlog) < 0) {
        const int err = errno;
        ::close(fd);
        throw Error(std::string("serve: listen() failed: ") +
                    std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
        const int err = errno;
        ::close(fd);
        throw Error(std::string("serve: getsockname() failed: ") +
                    std::strerror(err));
    }

    impl_->listen_fd = fd;
    impl_->port = ntohs(bound.sin_port);
    impl_->running = true;
    impl_->shutdown_requested = false;
    impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
}

void StudyServer::stop() {
    std::vector<std::thread> handlers;
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        if (!impl_->running && !impl_->accept_thread.joinable() &&
            impl_->handlers.empty() && impl_->finished.empty()) {
            return;
        }
        impl_->running = false;
        impl_->shutdown_requested = true;
        impl_->shutdown_listener_locked();
        // Unblock every connection's recv; handlers then exit and close
        // their own fds.
        for (const int fd : impl_->conn_fds) ::shutdown(fd, SHUT_RDWR);
        impl_->shutdown_cv.notify_all();
    }
    if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
    {
        // Only now — with the accept thread joined — is it safe to free
        // the listener's fd number, and no new handlers can appear.
        std::lock_guard<std::mutex> lock(impl_->mutex);
        if (impl_->listen_fd >= 0) {
            ::close(impl_->listen_fd);
            impl_->listen_fd = -1;
        }
        for (auto& [fd, thread] : impl_->handlers) {
            handlers.push_back(std::move(thread));
        }
        impl_->handlers.clear();
        for (std::thread& thread : impl_->finished) {
            handlers.push_back(std::move(thread));
        }
        impl_->finished.clear();
    }
    for (std::thread& t : handlers) {
        if (t.joinable()) t.join();
    }
}

void StudyServer::wait() {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->shutdown_cv.wait(lock, [this] {
        return impl_->shutdown_requested || !impl_->running;
    });
}

bool StudyServer::running() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->running;
}

unsigned short StudyServer::port() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->port;
}

explore::StudyCache& StudyServer::cache() { return impl_->cache; }

StudyServer::Stats StudyServer::stats() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return Stats{impl_->connections, impl_->requests, impl_->errors,
                 impl_->ledger_results};
}

}  // namespace chiplet::serve
