#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/version.h"
#include "explore/study_json.h"
#include "serve/dispatcher.h"
#include "serve/event_loop.h"
#include "serve/protocol.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace chiplet::serve {

namespace {

/// send(2) until the whole buffer is out; false on a broken connection.
/// MSG_NOSIGNAL keeps a client that hung up from killing the server
/// with SIGPIPE.  (thread_per_connection transport only — the event
/// loop writes through its own non-blocking path.)
bool send_all(int fd, const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool is_blank(const std::string& line) {
    return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

struct StudyServer::Impl {
    const core::ChipletActuary& actuary;
    ServerConfig config;
    /// Fingerprint of this server's actual model (equations + schema +
    /// its actuary's tech library); stamps persisted entries and the
    /// "model_version" surfaced by stats/metrics.
    std::uint64_t fingerprint = 0;
    std::string model_version;
    // Declared before `cache` so the attached store outlives it.
    std::optional<explore::StudyCacheStore> store;
    explore::StudyCache cache;
    explore::CellStore cell_store;
    std::optional<Dispatcher> dispatcher;

    // Protocol-level counters, shared by both transports.
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> ledger_results{0};
    std::atomic<std::uint64_t> dispatched{0};
    // Lifetime study-compiler counters, summed over every locally
    // evaluated run batch (explore/study_graph.h).
    std::atomic<std::uint64_t> graph_spec_dedups{0};
    std::atomic<std::uint64_t> graph_cell_refs{0};
    std::atomic<std::uint64_t> graph_unique_cells{0};
    std::atomic<std::uint64_t> graph_deduped_cells{0};
    std::atomic<std::uint64_t> graph_store_hits{0};
    std::atomic<std::uint64_t> graph_store_misses{0};

    mutable std::mutex mutex;
    std::condition_variable shutdown_cv;
    bool running = false;
    bool shutdown_requested = false;
    unsigned short port = 0;

    // -- event_loop transport ---------------------------------------------
    std::unique_ptr<EventLoop> loop;

    // -- thread_per_connection transport ----------------------------------
    int listen_fd = -1;
    std::unordered_set<int> conn_fds;
    std::thread accept_thread;
    // One thread per live connection, keyed by its fd.  A handler moves
    // its own thread object to `finished` on exit; the accept loop
    // joins that list before each new connection, so a long-lived
    // daemon does not accumulate a zombie thread per connection ever
    // served.  stop() joins whatever remains.
    std::unordered_map<int, std::thread> handlers;
    std::vector<std::thread> finished;

    explicit Impl(const core::ChipletActuary& a, ServerConfig c)
        : actuary(a),
          config(std::move(c)),
          fingerprint(core::model_fingerprint(a)),
          model_version(core::model_version_string(fingerprint)),
          // One memory knob, split 3/4 whole-result : 1/4 cell store.
          cache(explore::StudyCache::Config{
              config.cache_bytes - config.cache_bytes / 4,
              config.cache_shards, 64}),
          cell_store(explore::CellStore::Config{config.cache_bytes / 4,
                                                config.cache_shards}) {
        if (!config.dispatch.empty()) {
            dispatcher.emplace(Dispatcher::Config{
                parse_worker_list(config.dispatch)});
        }
        if (!config.cache_dir.empty()) {
            // Load first, attach second: replaying persisted entries
            // through StudyCache::insert must not rewrite their files.
            store.emplace(explore::StudyCacheStore::Config{config.cache_dir,
                                                           fingerprint});
            store->load_into(cache);
            cache.attach_store(&*store);
        }
    }

    // Shared protocol logic ------------------------------------------------
    [[nodiscard]] std::uint64_t total_connections() const;
    [[nodiscard]] std::string oversized_error();
    [[nodiscard]] std::string stats_response(const Envelope& envelope);
    [[nodiscard]] MetricsSnapshot metrics_snapshot() const;
    [[nodiscard]] std::string health_response(const Envelope& envelope);
    [[nodiscard]] std::string run_response(Request request);
    [[nodiscard]] FrameAction on_frame(std::string&& line);
    void announce_shutdown_now();
    [[nodiscard]] bool accepting() const;

    // thread_per_connection transport --------------------------------------
    void start_threaded();
    void stop_threaded();
    void accept_loop();
    void handle_connection(int fd);
    [[nodiscard]] std::string handle_line(const std::string& line,
                                          bool& close_after,
                                          bool& announce_shutdown);
    void shutdown_listener_locked();
};

// The event loop owns the lifetime accept counter while it exists; it
// is folded into the atomic when stop() retires the loop, so the total
// survives restarts and mode switches.
std::uint64_t StudyServer::Impl::total_connections() const {
    std::lock_guard<std::mutex> lock(mutex);
    return connections.load() +
           (loop ? loop->counters().connections.load() : 0);
}

std::string StudyServer::Impl::oversized_error() {
    ++errors;
    return encode_error("oversized",
                        "request line exceeds " +
                            std::to_string(config.max_line_bytes) + " bytes");
}

bool StudyServer::Impl::accepting() const {
    std::lock_guard<std::mutex> lock(mutex);
    if (loop) return loop->accepting();
    return running && !shutdown_requested;
}

std::string StudyServer::Impl::stats_response(const Envelope& envelope) {
    explore::StudyGraphStats graph;
    graph.spec_dedups = graph_spec_dedups.load();
    graph.cell_refs = graph_cell_refs.load();
    graph.unique_cells = graph_unique_cells.load();
    graph.deduped_cells = graph_deduped_cells.load();
    graph.store_hits = graph_store_hits.load();
    graph.store_misses = graph_store_misses.load();
    return encode_stats_response(cache.stats(), cell_store.stats(),
                                 total_connections(), requests.load(),
                                 errors.load(), ledger_results.load(), graph,
                                 util::ThreadPool::global().size(),
                                 model_version, envelope);
}

MetricsSnapshot StudyServer::Impl::metrics_snapshot() const {
    MetricsSnapshot m;
    m.requests = requests.load();
    m.errors = errors.load();
    m.ledger_results = ledger_results.load();
    m.dispatched = dispatched.load();
    m.graph_spec_dedups = graph_spec_dedups.load();
    m.graph_cell_refs = graph_cell_refs.load();
    m.graph_unique_cells = graph_unique_cells.load();
    m.graph_deduped_cells = graph_deduped_cells.load();
    m.graph_store_hits = graph_store_hits.load();
    m.graph_store_misses = graph_store_misses.load();
    m.cells = cell_store.stats();
    m.persistent = store.has_value();
    if (store) m.disk = store->stats();
    m.model_version = model_version;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (loop) {
            const LoopCounters& c = loop->counters();
            m.connections = connections.load() + c.connections.load();
            m.connections_live = c.connections_live.load();
            m.in_flight = c.in_flight.load();
            m.queued_frames = c.queued_frames.load();
            m.output_queue_bytes = c.output_queue_bytes.load();
            m.peak_output_queue_bytes = c.peak_output_queue_bytes.load();
            m.backpressure_stalls = c.backpressure_stalls.load();
            m.idle_disconnects = c.idle_disconnects.load();
            m.pipelined_frames = c.pipelined_frames.load();
        } else {
            m.connections = connections.load();
            m.connections_live = conn_fds.size();
        }
    }
    m.cache = cache.stats();
    m.threads = util::ThreadPool::global().size();
    return m;
}

std::string StudyServer::Impl::health_response(const Envelope& envelope) {
    std::uint64_t live = 0;
    std::uint64_t in_flight = 0;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (loop) {
            live = loop->counters().connections_live.load();
            in_flight = loop->counters().in_flight.load();
        } else {
            live = conn_fds.size();
        }
    }
    return encode_health_response(accepting(), live, in_flight, envelope);
}

void StudyServer::Impl::announce_shutdown_now() {
    std::lock_guard<std::mutex> lock(mutex);
    shutdown_requested = true;
    shutdown_cv.notify_all();
}

/// Evaluates one run request end to end and encodes the response.
/// Runs on an executor thread (event_loop) or a connection thread
/// (thread_per_connection); must never throw — a serving process
/// answers rather than dies.
std::string StudyServer::Impl::run_response(Request request) {
    using Clock = std::chrono::steady_clock;
    const Envelope envelope = request.envelope;
    try {
        const auto start = Clock::now();

        // Partition: studies the dispatcher shards across workers vs
        // everything evaluated in-process.  Positions are indices into
        // request.studies (the batch), remapped to document positions
        // via study_indices at the end.
        std::vector<explore::StudySpec> local_specs;
        std::vector<std::size_t> local_positions;
        std::vector<std::size_t> shard_positions;
        for (std::size_t i = 0; i < request.studies.size(); ++i) {
            if (dispatcher && Dispatcher::can_shard(request.studies[i])) {
                shard_positions.push_back(i);
            } else {
                local_positions.push_back(i);
                local_specs.push_back(request.studies[i]);
            }
        }

        explore::StudyBatchOutcome outcome = explore::run_studies_collecting(
            actuary, local_specs, &cache, &cell_store);

        // One response slot per batch position; failures leave theirs
        // empty and results stream out in batch order.
        std::vector<std::optional<JsonValue>> docs(request.studies.size());
        std::uint64_t with_ledgers = 0;
        RunMeta meta;
        meta.graph = outcome.graph;
        graph_spec_dedups += outcome.graph.spec_dedups;
        graph_cell_refs += outcome.graph.cell_refs;
        graph_unique_cells += outcome.graph.unique_cells;
        graph_deduped_cells += outcome.graph.deduped_cells;
        graph_store_hits += outcome.graph.store_hits;
        graph_store_misses += outcome.graph.store_misses;
        for (std::size_t k = 0; k < outcome.results.size(); ++k) {
            const explore::StudyResult& r = outcome.results[k];
            if (r.run.from_cache) ++meta.served_from_cache;
            if (r.run.with_ledgers) ++with_ledgers;
            docs[local_positions[outcome.indices[k]]] =
                explore::to_json(r);
        }

        std::vector<explore::StudyFailure> run_failures;
        for (explore::StudyFailure& f : outcome.failures) {
            f.index = local_positions[f.index];
            run_failures.push_back(std::move(f));
        }

        for (const std::size_t i : shard_positions) {
            try {
                docs[i] = dispatcher->run_sharded(actuary,
                                                  request.studies[i]);
                ++meta.dispatched;
                ++dispatched;
            } catch (const std::exception& e) {
                run_failures.push_back(explore::StudyFailure{
                    i, request.studies[i].name, "dispatch", e.what()});
            }
        }

        const std::vector<explore::StudyFailure> failures =
            explore::merge_failures(std::move(request.bad_studies),
                                    std::move(run_failures),
                                    request.study_indices);

        JsonArray result_docs;
        for (std::optional<JsonValue>& doc : docs) {
            if (doc) result_docs.push_back(std::move(*doc));
        }

        meta.cache = cache.stats();
        meta.threads = util::ThreadPool::global().size();
        meta.wall_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start)
                .count();
        meta.with_ledgers = with_ledgers;
        // Per-study failures ride inside a *successful* run response, so
        // they do not count toward `errors` (documented as error
        // responses sent).
        ++requests;
        ledger_results += with_ledgers;
        return encode_run_response(result_docs, failures, meta, envelope);
    } catch (const ParseError& e) {
        ++errors;
        return encode_error("parse", e.what(), envelope);
    } catch (const Error& e) {
        ++errors;
        return encode_error("model", e.what(), envelope);
    } catch (const std::exception& e) {
        ++errors;
        return encode_error("internal", e.what(), envelope);
    }
}

/// Event-loop frame handler: cheap verbs answer inline on the loop
/// thread, run requests become executor jobs.  Parsing happens here —
/// bounded by max_line_bytes — so a malformed frame answers without an
/// executor round trip.
FrameAction StudyServer::Impl::on_frame(std::string&& line) {
    FrameAction action;
    Envelope envelope;
    try {
        auto request =
            std::make_shared<Request>(parse_request(line, &envelope));
        switch (request->verb) {
            case Verb::ping:
                action.response = encode_ok(Verb::ping, envelope);
                break;
            case Verb::stats:
                action.response = stats_response(envelope);
                break;
            case Verb::metrics:
                action.response =
                    encode_metrics_response(metrics_snapshot(), envelope);
                break;
            case Verb::health:
                action.response = health_response(envelope);
                break;
            case Verb::shutdown:
                action.response = encode_ok(Verb::shutdown, envelope);
                action.close_after = true;
                action.announce_shutdown = true;
                break;
            case Verb::run:
                action.job = [this, request] {
                    return run_response(std::move(*request));
                };
                break;
        }
    } catch (const ParseError& e) {
        ++errors;
        action.response = encode_error("parse", e.what(), envelope);
    } catch (const Error& e) {
        ++errors;
        action.response = encode_error("model", e.what(), envelope);
    } catch (const std::exception& e) {
        ++errors;
        action.response = encode_error("internal", e.what(), envelope);
    }
    return action;
}

// ---------------------------------------------------------------------------
// thread_per_connection transport (bench baseline; original semantics)
// ---------------------------------------------------------------------------

// Only shutdown(2) here — never close(2): the accept thread may hold the
// fd number across an unlocked ::accept call, so the number must stay
// reserved (un-reusable by other sockets in this process) until stop()
// has joined that thread.  shutdown() wakes a blocked accept and makes
// the kernel refuse new connections, which is all teardown needs early.
void StudyServer::Impl::shutdown_listener_locked() {
    if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
}

void StudyServer::Impl::accept_loop() {
    for (;;) {
        int fd = -1;
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (!running || shutdown_requested || listen_fd < 0) return;
            fd = listen_fd;
        }
        const int conn = ::accept(fd, nullptr, nullptr);
        std::vector<std::thread> reap;
        bool alive = false;
        {
            std::lock_guard<std::mutex> lock(mutex);
            reap.swap(finished);
            alive = running && !shutdown_requested;
            if (conn >= 0 && alive) {
                conn_fds.insert(conn);
                ++connections;
                handlers.emplace(conn, std::thread([this, conn] {
                                     handle_connection(conn);
                                 }));
            } else if (conn >= 0) {
                ::close(conn);
            }
        }
        for (std::thread& t : reap) {
            if (t.joinable()) t.join();
        }
        if (!alive) return;
        if (conn < 0) {
            // EINTR, EMFILE/ENFILE and friends: back off briefly instead
            // of spinning the mutex at 100% CPU until the condition
            // clears (fd exhaustion can persist for a while).
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }
}

void StudyServer::Impl::handle_connection(int fd) {
    std::string buffer;
    char chunk[16384];
    bool open = true;
    while (open) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;  // disconnect (possibly mid-request) or stop()
        buffer.append(chunk, static_cast<std::size_t>(n));

        std::size_t pos;
        while (open && (pos = buffer.find(kFrameDelimiter)) != std::string::npos) {
            std::string line = buffer.substr(0, pos);
            buffer.erase(0, pos + 1);
            if (line.size() > config.max_line_bytes) {
                // The frame is complete, so the stream can resync: this
                // request is refused but the connection survives (an
                // unterminated overrun below cannot and closes it).
                if (!send_all(fd, oversized_error() + kFrameDelimiter)) {
                    open = false;
                }
                continue;
            }
            if (is_blank(line)) continue;
            bool close_after = false;
            bool announce = false;
            const std::string response = handle_line(line, close_after, announce);
            if (!send_all(fd, response + kFrameDelimiter)) open = false;
            if (announce) {
                // Wake wait() only now, with the ack already on the
                // wire: stop() severs connections, and doing that
                // before the send would eat the documented response.
                announce_shutdown_now();
            }
            if (close_after) open = false;
        }
        if (open && buffer.size() > config.max_line_bytes) {
            // The frame already exceeds the limit and has no newline in
            // sight: answer once and drop the connection — there is no
            // safe point to resynchronise at.
            (void)send_all(fd, oversized_error() + kFrameDelimiter);
            open = false;
        }
    }
    ::shutdown(fd, SHUT_RDWR);
    {
        // Deregister before close(): once the fd number is free for
        // reuse, stop() must no longer be able to shut it down — and
        // the handlers slot for this fd must be vacant before accept
        // can hand the number to a new connection.  Moving our own
        // thread object to `finished` is safe: whoever joins it simply
        // waits out this function's epilogue.
        std::lock_guard<std::mutex> lock(mutex);
        conn_fds.erase(fd);
        const auto self = handlers.find(fd);
        if (self != handlers.end()) {
            finished.push_back(std::move(self->second));
            handlers.erase(self);
        }
    }
    ::close(fd);
}

std::string StudyServer::Impl::handle_line(const std::string& line,
                                           bool& close_after,
                                           bool& announce_shutdown) {
    Envelope envelope;
    try {
        Request request = parse_request(line, &envelope);
        switch (request.verb) {
            case Verb::ping:
                return encode_ok(Verb::ping, envelope);
            case Verb::stats:
                return stats_response(envelope);
            case Verb::metrics:
                return encode_metrics_response(metrics_snapshot(), envelope);
            case Verb::health:
                return health_response(envelope);
            case Verb::shutdown: {
                // Stop accepting right away, but leave waking wait() to
                // the caller — after the ack is sent — so the owner's
                // stop() cannot cut this connection before the client
                // has its {"ok":true}.
                std::lock_guard<std::mutex> lock(mutex);
                shutdown_listener_locked();
                close_after = true;
                announce_shutdown = true;
                return encode_ok(Verb::shutdown, envelope);
            }
            case Verb::run:
                return run_response(std::move(request));
        }
        // Unreachable; every verb returns above.
        return encode_error("internal", "unhandled verb", envelope);
    } catch (const ParseError& e) {
        ++errors;
        return encode_error("parse", e.what(), envelope);
    } catch (const Error& e) {
        ++errors;
        return encode_error("model", e.what(), envelope);
    } catch (const std::exception& e) {
        // Defensive: nothing below should leak a non-chiplet exception,
        // but a serving process must answer rather than die.
        ++errors;
        return encode_error("internal", e.what(), envelope);
    }
}

void StudyServer::Impl::start_threaded() {
    std::lock_guard<std::mutex> lock(mutex);
    if (running) return;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        throw Error(std::string("serve: socket() failed: ") +
                    std::strerror(errno));
    }
    const int reuse = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(config.port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd);
        throw Error("serve: cannot bind 127.0.0.1:" +
                    std::to_string(config.port) + ": " + std::strerror(err));
    }
    if (::listen(fd, config.backlog) < 0) {
        const int err = errno;
        ::close(fd);
        throw Error(std::string("serve: listen() failed: ") +
                    std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
        const int err = errno;
        ::close(fd);
        throw Error(std::string("serve: getsockname() failed: ") +
                    std::strerror(err));
    }

    listen_fd = fd;
    port = ntohs(bound.sin_port);
    running = true;
    shutdown_requested = false;
    accept_thread = std::thread([this] { accept_loop(); });
}

void StudyServer::Impl::stop_threaded() {
    std::vector<std::thread> joinable;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!running && !accept_thread.joinable() && handlers.empty() &&
            finished.empty()) {
            return;
        }
        running = false;
        shutdown_requested = true;
        shutdown_listener_locked();
        // Unblock every connection's recv; handlers then exit and close
        // their own fds.
        for (const int fd : conn_fds) ::shutdown(fd, SHUT_RDWR);
        shutdown_cv.notify_all();
    }
    if (accept_thread.joinable()) accept_thread.join();
    {
        // Only now — with the accept thread joined — is it safe to free
        // the listener's fd number, and no new handlers can appear.
        std::lock_guard<std::mutex> lock(mutex);
        if (listen_fd >= 0) {
            ::close(listen_fd);
            listen_fd = -1;
        }
        for (auto& [fd, thread] : handlers) {
            joinable.push_back(std::move(thread));
        }
        handlers.clear();
        for (std::thread& thread : finished) {
            joinable.push_back(std::move(thread));
        }
        finished.clear();
    }
    for (std::thread& t : joinable) {
        if (t.joinable()) t.join();
    }
}

// ---------------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------------

StudyServer::StudyServer(const core::ChipletActuary& actuary,
                         ServerConfig config)
    : impl_(new Impl(actuary, std::move(config))) {}

StudyServer::~StudyServer() {
    stop();
    delete impl_;
}

void StudyServer::start() {
    if (impl_->config.mode == ServerMode::thread_per_connection) {
        impl_->start_threaded();
        return;
    }
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->running) return;

    EventLoopConfig loop_config;
    loop_config.port = impl_->config.port;
    loop_config.backlog = impl_->config.backlog;
    loop_config.max_line_bytes = impl_->config.max_line_bytes;
    loop_config.max_output_bytes = impl_->config.max_output_bytes;
    loop_config.idle_timeout_ms = impl_->config.idle_timeout_ms;
    loop_config.workers = impl_->config.eval_workers;

    auto loop = std::make_unique<EventLoop>(
        loop_config,
        [impl = impl_](std::string&& line) {
            return impl->on_frame(std::move(line));
        },
        [impl = impl_](bool) { return impl->oversized_error(); },
        [impl = impl_] { impl->announce_shutdown_now(); });
    loop->start();  // throws on bind failure; nothing to roll back

    impl_->loop = std::move(loop);
    impl_->port = impl_->loop->port();
    impl_->running = true;
    impl_->shutdown_requested = false;
}

void StudyServer::stop() {
    if (impl_->config.mode == ServerMode::thread_per_connection) {
        impl_->stop_threaded();
        return;
    }
    std::unique_ptr<EventLoop> loop;
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        if (!impl_->running && !impl_->loop) return;
        impl_->running = false;
        impl_->shutdown_requested = true;
        impl_->shutdown_cv.notify_all();
        if (impl_->loop) {
            // Fold the loop's lifetime accept counter into the atomic
            // before the loop object is retired, so the total survives.
            impl_->connections += impl_->loop->counters().connections.load();
            loop = std::move(impl_->loop);
        }
    }
    if (loop) loop->stop();
}

void StudyServer::wait() {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->shutdown_cv.wait(lock, [this] {
        return impl_->shutdown_requested || !impl_->running;
    });
}

bool StudyServer::running() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->running;
}

unsigned short StudyServer::port() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->port;
}

explore::StudyCache& StudyServer::cache() { return impl_->cache; }

explore::CellStore& StudyServer::cell_store() { return impl_->cell_store; }

StudyServer::Stats StudyServer::stats() const {
    return Stats{impl_->total_connections(), impl_->requests.load(),
                 impl_->errors.load(), impl_->ledger_results.load(),
                 impl_->dispatched.load()};
}

MetricsSnapshot StudyServer::metrics() const {
    return impl_->metrics_snapshot();
}

}  // namespace chiplet::serve
