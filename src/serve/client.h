// Minimal blocking client for the actuaryd protocol: connects over
// loopback TCP, sends newline-framed JSON requests, reads framed
// responses.  Used by `actuary_cli client`, the serving tests and
// bench_serve; the raw send_bytes/read_line surface lets the fuzz tests
// speak deliberately broken protocol.
#pragma once

#include <span>
#include <string>

#include "explore/study.h"
#include "serve/protocol.h"
#include "util/json.h"

namespace chiplet::serve {

class StudyClient {
public:
    /// Connects immediately; throws chiplet::Error when the host does
    /// not resolve (only "localhost" and dotted IPv4 are supported) or
    /// the connection is refused.  `timeout_seconds` bounds every read
    /// so a wedged server fails loudly instead of hanging the caller
    /// (0 = no timeout).
    StudyClient(const std::string& host, unsigned short port,
                unsigned timeout_seconds = 60);
    ~StudyClient();

    StudyClient(const StudyClient&) = delete;
    StudyClient& operator=(const StudyClient&) = delete;

    /// Sends `line` plus the frame delimiter.  Throws Error on a broken
    /// connection.
    void send_line(const std::string& line);

    /// Sends bytes exactly as given — no delimiter; fuzzing seam.
    void send_bytes(const std::string& bytes);

    /// Reads up to the next frame delimiter (stripped).  Throws Error
    /// on disconnect or timeout.
    [[nodiscard]] std::string read_line();

    /// send_line + read_line + JSON parse of the response frame.
    [[nodiscard]] JsonValue call(const std::string& request);

    /// Convenience wrappers over call().
    [[nodiscard]] JsonValue run(std::span<const explore::StudySpec> specs);
    [[nodiscard]] JsonValue ping();
    [[nodiscard]] JsonValue stats();
    [[nodiscard]] JsonValue shutdown();

    /// Half-closes the write side (server sees EOF) without destroying
    /// the object; read_line still drains buffered responses.
    void shutdown_write();

    void close();

private:
    int fd_ = -1;
    std::string buffer_;
};

}  // namespace chiplet::serve
