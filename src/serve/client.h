// Minimal blocking client for the actuaryd protocol: connects over
// loopback TCP, sends newline-framed JSON requests, reads framed
// responses.  Used by `actuary_cli client`, the dispatcher, the serving
// tests and bench_serve; the raw send_bytes/read_line surface lets the
// fuzz tests speak deliberately broken protocol.
//
// Failures are typed: every transport problem throws ClientError, which
// carries a machine-readable code alongside the human message and still
// derives from chiplet::Error so existing catch sites keep working.
// `actuary_cli client` maps the codes onto its exit-code scheme.
#pragma once

#include <span>
#include <string>

#include "explore/study.h"
#include "serve/protocol.h"
#include "util/error.h"
#include "util/json.h"

namespace chiplet::serve {

/// What went wrong at the transport layer.
enum class ClientErrorCode {
    bad_address,     ///< host did not parse as IPv4 / "localhost"
    connect_failed,  ///< connection refused or unreachable
    timeout,         ///< connect, read or overall deadline expired
    io,              ///< send/recv failed mid-stream
    closed,          ///< server closed, or the client object already was
};

[[nodiscard]] const char* to_string(ClientErrorCode code);

class ClientError : public Error {
public:
    ClientError(ClientErrorCode code, const std::string& message)
        : Error(message), code_(code) {}

    [[nodiscard]] ClientErrorCode code() const { return code_; }

private:
    ClientErrorCode code_;
};

/// Connection-level deadlines, all milliseconds, 0 = unbounded.
struct ClientConfig {
    unsigned connect_timeout_ms = 0;  ///< bound on the TCP handshake
    unsigned read_timeout_ms = 0;     ///< bound on each silent wait
    /// Bound on one whole read_line() call — caps a server that trickles
    /// bytes forever, which per-read timeouts never catch.
    unsigned overall_timeout_ms = 0;
};

class StudyClient {
public:
    /// Connects immediately; throws ClientError when the host does not
    /// resolve (only "localhost" and dotted IPv4 are supported), the
    /// connection is refused, or `config.connect_timeout_ms` expires.
    StudyClient(const std::string& host, unsigned short port,
                ClientConfig config);

    /// Legacy convenience: `timeout_seconds` bounds every read so a
    /// wedged server fails loudly instead of hanging the caller
    /// (0 = no timeout).
    StudyClient(const std::string& host, unsigned short port,
                unsigned timeout_seconds = 60);
    ~StudyClient();

    StudyClient(const StudyClient&) = delete;
    StudyClient& operator=(const StudyClient&) = delete;

    /// Sends `line` plus the frame delimiter.  Throws ClientError on a
    /// broken connection.
    void send_line(const std::string& line);

    /// Sends bytes exactly as given — no delimiter; fuzzing seam.
    void send_bytes(const std::string& bytes);

    /// Reads up to the next frame delimiter (stripped).  Throws
    /// ClientError on disconnect or timeout.
    [[nodiscard]] std::string read_line();

    /// send_line + read_line + JSON parse of the response frame.
    [[nodiscard]] JsonValue call(const std::string& request);

    /// Convenience wrappers over call().
    [[nodiscard]] JsonValue run(std::span<const explore::StudySpec> specs);
    [[nodiscard]] JsonValue ping();
    [[nodiscard]] JsonValue stats();
    [[nodiscard]] JsonValue metrics();
    [[nodiscard]] JsonValue health();
    [[nodiscard]] JsonValue shutdown();

    /// Half-closes the write side (server sees EOF) without destroying
    /// the object; read_line still drains buffered responses.
    void shutdown_write();

    void close();

private:
    int fd_ = -1;
    ClientConfig config_;
    std::string buffer_;
};

}  // namespace chiplet::serve
