#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"

namespace chiplet::serve {

StudyClient::StudyClient(const std::string& host, unsigned short port,
                         unsigned timeout_seconds) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    const std::string ip = host == "localhost" ? "127.0.0.1" : host;
    if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
        throw Error("client: invalid IPv4 address '" + host + "'");
    }

    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        throw Error(std::string("client: socket() failed: ") +
                    std::strerror(errno));
    }
    if (timeout_seconds > 0) {
        timeval tv{};
        tv.tv_sec = static_cast<time_t>(timeout_seconds);
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw Error("client: cannot connect to " + ip + ":" +
                    std::to_string(port) + ": " + std::strerror(err));
    }
}

StudyClient::~StudyClient() { close(); }

void StudyClient::send_line(const std::string& line) {
    send_bytes(line + kFrameDelimiter);
}

void StudyClient::send_bytes(const std::string& bytes) {
    if (fd_ < 0) throw Error("client: connection is closed");
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw Error(std::string("client: send failed: ") +
                        std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
}

std::string StudyClient::read_line() {
    if (fd_ < 0) throw Error("client: connection is closed");
    for (;;) {
        const std::size_t pos = buffer_.find(kFrameDelimiter);
        if (pos != std::string::npos) {
            std::string line = buffer_.substr(0, pos);
            buffer_.erase(0, pos + 1);
            return line;
        }
        char chunk[16384];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                throw Error("client: read timed out");
            }
            throw Error(std::string("client: recv failed: ") +
                        std::strerror(errno));
        }
        if (n == 0) throw Error("client: server closed the connection");
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

JsonValue StudyClient::call(const std::string& request) {
    send_line(request);
    return JsonValue::parse(read_line());
}

JsonValue StudyClient::run(std::span<const explore::StudySpec> specs) {
    return call(encode_run_request(specs));
}

JsonValue StudyClient::ping() { return call(encode_verb_request(Verb::ping)); }

JsonValue StudyClient::stats() {
    return call(encode_verb_request(Verb::stats));
}

JsonValue StudyClient::shutdown() {
    return call(encode_verb_request(Verb::shutdown));
}

void StudyClient::shutdown_write() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void StudyClient::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

}  // namespace chiplet::serve
