#include "serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace chiplet::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// poll(2) for readiness, EINTR-proof.  Returns false on timeout.
bool wait_ready(int fd, short events, int timeout_ms) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const auto deadline =
        timeout_ms >= 0 ? Clock::now() + std::chrono::milliseconds(timeout_ms)
                        : Clock::time_point::max();
    for (;;) {
        const int n = ::poll(&p, 1, timeout_ms);
        if (n > 0) return true;
        if (n == 0) return false;
        if (errno != EINTR) return true;  // let the next syscall report it
        if (timeout_ms >= 0) {
            const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now());
            timeout_ms = static_cast<int>(std::max<long long>(0, left.count()));
        }
    }
}

}  // namespace

const char* to_string(ClientErrorCode code) {
    switch (code) {
        case ClientErrorCode::bad_address: return "bad_address";
        case ClientErrorCode::connect_failed: return "connect_failed";
        case ClientErrorCode::timeout: return "timeout";
        case ClientErrorCode::io: return "io";
        case ClientErrorCode::closed: return "closed";
    }
    return "unknown";
}

StudyClient::StudyClient(const std::string& host, unsigned short port,
                         ClientConfig config)
    : config_(config) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    const std::string ip = host == "localhost" ? "127.0.0.1" : host;
    if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
        throw ClientError(ClientErrorCode::bad_address,
                          "client: invalid IPv4 address '" + host + "'");
    }

    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        throw ClientError(ClientErrorCode::io,
                          std::string("client: socket() failed: ") +
                              std::strerror(errno));
    }

    if (config_.connect_timeout_ms > 0) {
        // Non-blocking connect bounded by poll: a black-holed endpoint
        // fails in connect_timeout_ms instead of the kernel's minutes.
        const int flags = ::fcntl(fd_, F_GETFL, 0);
        ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
        const int rc = ::connect(
            fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
        if (rc < 0 && errno != EINPROGRESS) {
            const int err = errno;
            close();
            throw ClientError(ClientErrorCode::connect_failed,
                              "client: cannot connect to " + ip + ":" +
                                  std::to_string(port) + ": " +
                                  std::strerror(err));
        }
        if (rc < 0) {
            if (!wait_ready(fd_, POLLOUT,
                            static_cast<int>(config_.connect_timeout_ms))) {
                close();
                throw ClientError(ClientErrorCode::timeout,
                                  "client: connect to " + ip + ":" +
                                      std::to_string(port) + " timed out");
            }
            int err = 0;
            socklen_t len = sizeof(err);
            ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
            if (err != 0) {
                close();
                throw ClientError(ClientErrorCode::connect_failed,
                                  "client: cannot connect to " + ip + ":" +
                                      std::to_string(port) + ": " +
                                      std::strerror(err));
            }
        }
        ::fcntl(fd_, F_SETFL, flags);
    } else if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)) < 0) {
        const int err = errno;
        close();
        throw ClientError(ClientErrorCode::connect_failed,
                          "client: cannot connect to " + ip + ":" +
                              std::to_string(port) + ": " +
                              std::strerror(err));
    }

    if (config_.read_timeout_ms > 0) {
        // Backstop for sends; reads are bounded by poll in read_line.
        timeval tv{};
        tv.tv_sec = static_cast<time_t>(config_.read_timeout_ms / 1000);
        tv.tv_usec =
            static_cast<suseconds_t>((config_.read_timeout_ms % 1000) * 1000);
        ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
}

StudyClient::StudyClient(const std::string& host, unsigned short port,
                         unsigned timeout_seconds)
    : StudyClient(host, port,
                  ClientConfig{0, timeout_seconds * 1000u, 0}) {}

StudyClient::~StudyClient() { close(); }

void StudyClient::send_line(const std::string& line) {
    send_bytes(line + kFrameDelimiter);
}

void StudyClient::send_bytes(const std::string& bytes) {
    if (fd_ < 0) {
        throw ClientError(ClientErrorCode::closed,
                          "client: connection is closed");
    }
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                throw ClientError(ClientErrorCode::timeout,
                                  "client: send timed out");
            }
            throw ClientError(ClientErrorCode::io,
                              std::string("client: send failed: ") +
                                  std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
}

std::string StudyClient::read_line() {
    if (fd_ < 0) {
        throw ClientError(ClientErrorCode::closed,
                          "client: connection is closed");
    }
    const auto overall_deadline =
        config_.overall_timeout_ms > 0
            ? Clock::now() + std::chrono::milliseconds(config_.overall_timeout_ms)
            : Clock::time_point::max();
    for (;;) {
        const std::size_t pos = buffer_.find(kFrameDelimiter);
        if (pos != std::string::npos) {
            std::string line = buffer_.substr(0, pos);
            buffer_.erase(0, pos + 1);
            return line;
        }
        int wait_ms = -1;
        if (config_.read_timeout_ms > 0) {
            wait_ms = static_cast<int>(config_.read_timeout_ms);
        }
        if (config_.overall_timeout_ms > 0) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    overall_deadline - Clock::now());
            const int overall_ms =
                static_cast<int>(std::max<long long>(0, left.count()));
            wait_ms = wait_ms < 0 ? overall_ms : std::min(wait_ms, overall_ms);
        }
        if (wait_ms >= 0 && !wait_ready(fd_, POLLIN, wait_ms)) {
            throw ClientError(ClientErrorCode::timeout,
                              "client: read timed out");
        }
        char chunk[16384];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                throw ClientError(ClientErrorCode::timeout,
                                  "client: read timed out");
            }
            throw ClientError(ClientErrorCode::io,
                              std::string("client: recv failed: ") +
                                  std::strerror(errno));
        }
        if (n == 0) {
            throw ClientError(ClientErrorCode::closed,
                              "client: server closed the connection");
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

JsonValue StudyClient::call(const std::string& request) {
    send_line(request);
    return JsonValue::parse(read_line());
}

JsonValue StudyClient::run(std::span<const explore::StudySpec> specs) {
    return call(encode_run_request(specs));
}

JsonValue StudyClient::ping() { return call(encode_verb_request(Verb::ping)); }

JsonValue StudyClient::stats() {
    return call(encode_verb_request(Verb::stats));
}

JsonValue StudyClient::metrics() {
    return call(encode_verb_request(Verb::metrics));
}

JsonValue StudyClient::health() {
    return call(encode_verb_request(Verb::health));
}

JsonValue StudyClient::shutdown() {
    return call(encode_verb_request(Verb::shutdown));
}

void StudyClient::shutdown_write() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void StudyClient::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

}  // namespace chiplet::serve
