// Range-sharded design-space dispatch: actuaryd in --dispatch mode
// splits one design_space study into contiguous enumeration-index
// windows, runs each window on a worker actuaryd over the ordinary wire
// protocol, and merges the per-shard rankings into a result envelope
// byte-identical to a single-process run of the same spec.
//
// Why byte-identity holds: candidate indices are global (the window
// restricts the scan, not the numbering), every shard ranks by the same
// (total_per_unit, index) order with the same top_k, and the library
// serialises numbers deterministically — so the merged top-K is exactly
// the whole-space top-K, and the merge copies each worker's serialised
// "best" entries and table rows through verbatim rather than re-rounding
// recomputed numbers.  Only the table's rank cells (strings) are
// rewritten, and the space accounting (total/pruned/evaluated) is summed
// from exact integers.  Ordering never trusts the 12-digit payload
// numbers, which can render two raw-distinct totals identically:
// windowed result documents carry lossless "order_keys" (shortest
// round-trip strings, present only when an index window is set), and
// the merge sorts on those exact doubles — the same comparator the
// single-process bounded heap uses.
//
// Failure model: a dead or misbehaving worker fails the sharded study —
// there is no silent partial ranking — and surfaces as a structured
// per-study failure with stage "dispatch"; other studies in the same
// request batch still run.  Explain studies and every non-design_space
// kind are evaluated locally by the dispatching server.
#pragma once

#include <string>
#include <vector>

#include "core/actuary.h"
#include "explore/study.h"
#include "util/json.h"

namespace chiplet::serve {

/// One worker actuaryd endpoint.
struct WorkerAddress {
    std::string host = "127.0.0.1";
    unsigned short port = 0;

    [[nodiscard]] std::string label() const {
        return host + ":" + std::to_string(port);
    }
};

/// Parses the --dispatch worker list: comma-separated `host:port` or
/// bare `port` entries (host defaults to 127.0.0.1).  Throws ParseError
/// on an empty list, a bad port, or a malformed entry.
[[nodiscard]] std::vector<WorkerAddress> parse_worker_list(
    const std::string& text);

class Dispatcher {
public:
    struct Config {
        std::vector<WorkerAddress> workers;
        /// Per-shard read timeout; large spaces take a while (0 = none).
        unsigned timeout_seconds = 600;
    };

    explicit Dispatcher(Config config) : config_(std::move(config)) {}

    /// True when `spec` is dispatched instead of evaluated locally: a
    /// design_space study without explain (ledger attachment needs the
    /// winning candidate's system, which only exists whole-space).
    [[nodiscard]] static bool can_shard(const explore::StudySpec& spec);

    [[nodiscard]] const std::vector<WorkerAddress>& workers() const {
        return config_.workers;
    }

    /// Shards `spec` across the workers and returns the merged result
    /// envelope — the same document shape as
    /// explore::to_json(run_study(actuary, spec)), with payload and
    /// table bit-identical to the single-process run ("meta" reflects
    /// the dispatch instead).  Throws chiplet::Error naming the worker
    /// when any shard fails; the caller reports it as a stage
    /// "dispatch" study failure.
    [[nodiscard]] JsonValue run_sharded(const core::ChipletActuary& actuary,
                                        const explore::StudySpec& spec) const;

private:
    Config config_;
};

}  // namespace chiplet::serve
