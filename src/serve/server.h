// actuaryd: a long-lived evaluation server over local TCP.  Accepts
// concurrent clients speaking the newline-framed JSON protocol of
// serve/protocol.h (v0 and v1); run requests are answered from the
// canonical-spec result cache (explore/study_cache.h) when possible and
// otherwise batched onto the process-global thread pool via
// explore::run_studies_collecting, so responses are bit-identical to a
// serial run_study of the same specs.
//
//   core::ChipletActuary actuary;
//   serve::StudyServer server(actuary, {.port = 0});  // 0 = ephemeral
//   server.start();
//   std::cout << "listening on 127.0.0.1:" << server.port() << "\n";
//   server.wait();   // returns once a client sends {"op":"shutdown"}
//   server.stop();   // tears down the transport
//
// Two transports share every protocol semantic:
//  - event_loop (default): one epoll readiness loop owns every socket
//    (serve/event_loop.h); study evaluation fans onto executor threads
//    and completions return via eventfd.  Requests may be pipelined,
//    slow readers are bounded by per-connection write backpressure, and
//    idle connections can be reaped.
//  - thread_per_connection: the original accept-thread + thread-per-
//    client transport, kept as the bench_serve comparison baseline.
//
// Dispatch mode: with ServerConfig::dispatch set to a worker list
// ("host:port,host:port,..."), non-explain design_space studies are
// range-sharded across those worker actuaryds and merged bit-identically
// to a local run (serve/dispatcher.h); every other study still runs
// locally.  A failed worker fails that study with stage "dispatch".
//
// Robustness contract (exercised by tests/test_fuzz_json.cpp): garbage
// frames, truncated requests and mid-request disconnects never crash or
// wedge the server; malformed requests get a structured JSON error
// response and the connection stays usable.  Frames over
// ServerConfig::max_line_bytes are answered with an "oversized" error;
// a complete frame leaves the connection usable, while an unterminated
// overrun closes it (there is no safe point to resynchronise at).
#pragma once

#include <cstdint>
#include <string>

#include "core/actuary.h"
#include "explore/study_cache.h"
#include "serve/protocol.h"

namespace chiplet::serve {

enum class ServerMode {
    event_loop,             ///< epoll readiness loop (default)
    thread_per_connection,  ///< legacy transport; bench baseline
};

struct ServerConfig {
    unsigned short port = 0;        ///< 0 binds an ephemeral port
    /// Combined memory bound of the two result caches: the canonical-
    /// spec study cache takes 3/4 of it, the cross-study cell store
    /// (explore/cell_store.h) the remaining 1/4 — one knob, one bound.
    std::size_t cache_bytes = 64ull << 20;
    unsigned cache_shards = 8;
    /// Directory for the persistent study-cache store
    /// (explore/cache_store.h): populated entries are written through
    /// atomically and replayed into the memory cache on start, keyed by
    /// the model fingerprint so a changed model cold-starts.  Empty =
    /// memory only.  The constructor throws chiplet::Error when the
    /// directory cannot be created.
    std::string cache_dir;
    std::size_t max_line_bytes = 8ull << 20;  ///< per-frame size limit
    int backlog = 64;               ///< listen(2) queue depth
    ServerMode mode = ServerMode::event_loop;
    /// Per-connection unsent-response bound (event_loop mode): reading
    /// pauses above it, resumes below half of it.
    std::size_t max_output_bytes = 8ull << 20;
    /// Disconnect connections with no traffic and no queued work for
    /// this long (event_loop mode); 0 = never.
    unsigned idle_timeout_ms = 0;
    /// Executor threads evaluating run requests (event_loop mode); each
    /// batch still fans onto the process-global thread pool.
    unsigned eval_workers = 2;
    /// Comma-separated worker list ("host:port" or bare "port" entries)
    /// enabling dispatch mode; empty = evaluate everything locally.
    /// A bad list makes the constructor throw ParseError.
    std::string dispatch;
};

/// The server front end.  The actuary must outlive the server.
class StudyServer {
public:
    explicit StudyServer(const core::ChipletActuary& actuary,
                         ServerConfig config = {});
    ~StudyServer();  ///< calls stop()

    StudyServer(const StudyServer&) = delete;
    StudyServer& operator=(const StudyServer&) = delete;

    /// Binds 127.0.0.1 and starts accepting.  Throws chiplet::Error when
    /// the socket cannot be created or bound (e.g. port in use).
    void start();

    /// Stops accepting, unblocks every connection, joins every thread,
    /// closes all sockets.  Idempotent.
    void stop();

    /// Blocks until a client requests shutdown or stop() is called.
    void wait();

    [[nodiscard]] bool running() const;

    /// The bound port (the ephemeral one when config.port was 0).
    [[nodiscard]] unsigned short port() const;

    [[nodiscard]] explore::StudyCache& cache();

    /// The process-lifetime cross-study cell store backing every run
    /// request's compiled batch.
    [[nodiscard]] explore::CellStore& cell_store();

    struct Stats {
        std::uint64_t connections = 0;  ///< accepted sockets, lifetime
        std::uint64_t requests = 0;     ///< successfully answered run frames
        std::uint64_t errors = 0;       ///< error responses sent
        /// Results served that carried itemised cost ledgers (explain
        /// studies), lifetime.
        std::uint64_t ledger_results = 0;
        /// Studies answered by range-sharded dispatch, lifetime.
        std::uint64_t dispatched = 0;
    };
    [[nodiscard]] Stats stats() const;

    /// Everything the "metrics" verb reports, readable in-process; loop
    /// gauges are zero in thread_per_connection mode.
    [[nodiscard]] MetricsSnapshot metrics() const;

private:
    struct Impl;
    Impl* impl_;
};

}  // namespace chiplet::serve
