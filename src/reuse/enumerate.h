// Enumeration of chiplet collocations for the FSMC reuse scheme (paper
// Sec. 5.3): with n chiplet types and a package of k identical sockets,
// every multiset of 1..k chiplets is a buildable system.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace chiplet::reuse {

/// One collocation: counts[t] chiplets of type t, with
/// 1 <= sum(counts) <= k.
using Collocation = std::vector<unsigned>;

/// All distinct collocations of up to `k_sockets` chiplets drawn from
/// `n_types` types, in deterministic (lexicographic, size-major) order.
/// The result size equals fsmc_system_count(n_types, k_sockets) =
/// sum_{i=1..k} C(n+i-1, i).
[[nodiscard]] std::vector<Collocation> enumerate_collocations(unsigned n_types,
                                                              unsigned k_sockets);

/// Number of sockets a collocation occupies (sum of counts).
[[nodiscard]] unsigned occupied_sockets(const Collocation& c);

/// Compact display name, e.g. {2,0,1} -> "2xT1+1xT3".
[[nodiscard]] std::string collocation_name(const Collocation& c);

}  // namespace chiplet::reuse
