// Reuse return-on-investment metrics: quantifies the paper's Sec. 5.3
// principle — "the basic principle is building more systems by fewer
// chiplets" — for any family, so alternative reuse schemes can be
// compared on one scorecard.
#pragma once

#include "core/actuary.h"
#include "design/system.h"

namespace chiplet::reuse {

/// Scorecard of a multi-chip family against its monolithic reference.
struct ReuseReport {
    std::size_t systems = 0;         ///< products delivered
    std::size_t chip_designs = 0;    ///< distinct dies that had to be designed
    std::size_t module_designs = 0;  ///< distinct modules
    std::size_t package_designs = 0;

    /// Products per chip design — the paper's headline reuse metric.
    double systems_per_chip_design = 0.0;

    double family_nre_usd = 0.0;      ///< absolute NRE of the family
    double soc_nre_usd = 0.0;         ///< absolute NRE of the SoC reference
    double nre_saving = 0.0;          ///< 1 - family/soc (can be negative)

    double avg_unit_cost = 0.0;       ///< quantity-weighted, family
    double soc_avg_unit_cost = 0.0;   ///< quantity-weighted, reference
    double cost_ratio = 0.0;          ///< family / reference
};

/// Computes the scorecard.  `family` and `soc_reference` must describe
/// the same products (same order, same quantities); throws
/// ParameterError when the sizes differ.
[[nodiscard]] ReuseReport reuse_report(const core::ChipletActuary& actuary,
                                       const design::SystemFamily& family,
                                       const design::SystemFamily& soc_reference);

}  // namespace chiplet::reuse
