#include "reuse/scms.h"

#include "design/builder.h"
#include "util/error.h"

namespace chiplet::reuse {

design::SystemFamily make_scms_family(const ScmsConfig& config) {
    CHIPLET_EXPECTS(!config.grades.empty(), "SCMS needs at least one grade");
    CHIPLET_EXPECTS(config.module_area_mm2 > 0.0, "module area must be positive");

    const auto make_chiplet = [&](const std::string& name) {
        // Mirrored variants share the *module* design (same content) but
        // are distinct chip designs with their own masks.
        return design::ChipBuilder(name, config.node)
            .module(config.chiplet_name + "_module", config.module_area_mm2)
            .d2d(config.d2d_fraction)
            .build();
    };
    const design::Chip chiplet = make_chiplet(config.chiplet_name);
    const design::Chip mirrored = make_chiplet(config.chiplet_name + "_mirror");

    design::SystemFamily family;
    for (unsigned grade : config.grades) {
        CHIPLET_EXPECTS(grade > 0, "grade must place at least one chiplet");
        design::SystemBuilder builder(
            config.chiplet_name + "_" + std::to_string(grade) + "x",
            config.packaging);
        if (config.mirrored_chiplets && grade > 1) {
            const unsigned right = grade / 2;
            builder.chips(chiplet, grade - right).chips(mirrored, right);
        } else {
            builder.chips(chiplet, grade);
        }
        builder.quantity(config.quantity_each);
        if (config.reuse_package) {
            builder.package_design("pkg:" + config.chiplet_name + "_scms");
        }
        family.add(builder.build());
    }
    return family;
}

design::SystemFamily make_scms_soc_family(const ScmsConfig& config) {
    CHIPLET_EXPECTS(!config.grades.empty(), "SCMS needs at least one grade");
    design::SystemFamily family;
    for (unsigned grade : config.grades) {
        CHIPLET_EXPECTS(grade > 0, "grade must place at least one chiplet");
        // The monolithic die instantiates the same logical module `grade`
        // times, so the module design is shared while each grade needs its
        // own chip design (and mask set) — paper Eq. 7.
        design::ChipBuilder chip_builder(
            config.chiplet_name + "_soc_" + std::to_string(grade) + "x_die",
            config.node);
        for (unsigned i = 0; i < grade; ++i) {
            chip_builder.module(config.chiplet_name + "_module",
                                config.module_area_mm2);
        }
        family.add(design::SystemBuilder(
                       config.chiplet_name + "_soc_" + std::to_string(grade) + "x",
                       "SoC")
                       .chip(chip_builder.build())
                       .quantity(config.quantity_each)
                       .build());
    }
    return family;
}

}  // namespace chiplet::reuse
