#include "reuse/ocme.h"

#include "design/builder.h"
#include "util/error.h"

namespace chiplet::reuse {

std::vector<OcmeVariant> default_ocme_variants() {
    return {OcmeVariant{0, 0}, OcmeVariant{1, 0}, OcmeVariant{1, 1},
            OcmeVariant{2, 2}};
}

namespace {

std::string variant_name(const OcmeVariant& v) {
    std::string name = "C";
    if (v.x_count > 0) name += "+" + std::to_string(v.x_count) + "X";
    if (v.y_count > 0) name += "+" + std::to_string(v.y_count) + "Y";
    return name;
}

void check(const OcmeConfig& config, const std::vector<OcmeVariant>& variants) {
    CHIPLET_EXPECTS(config.socket_area_mm2 > 0.0, "socket area must be positive");
    CHIPLET_EXPECTS(!variants.empty(), "OCME needs at least one variant");
    for (const OcmeVariant& v : variants) {
        CHIPLET_EXPECTS(v.x_count + v.y_count <= config.extension_sockets,
                        "variant " + variant_name(v) + " exceeds " +
                            std::to_string(config.extension_sockets) + " sockets");
    }
}

}  // namespace

design::SystemFamily make_ocme_family(const OcmeConfig& config,
                                      const std::vector<OcmeVariant>& variants) {
    check(config, variants);

    // The center module is specified at the *extension* node; moving the
    // center die to `center_node` retargets the area (unless unscalable).
    const design::Chip center =
        design::ChipBuilder("C", config.center_node)
            .module("C_module", config.socket_area_mm2, config.node,
                    !config.center_unscalable)
            .d2d(config.d2d_fraction)
            .build();
    const design::Chip ext_x = design::ChipBuilder("X", config.node)
                                   .module("X_module", config.socket_area_mm2)
                                   .d2d(config.d2d_fraction)
                                   .build();
    const design::Chip ext_y = design::ChipBuilder("Y", config.node)
                                   .module("Y_module", config.socket_area_mm2)
                                   .d2d(config.d2d_fraction)
                                   .build();

    design::SystemFamily family;
    for (const OcmeVariant& v : variants) {
        design::SystemBuilder builder(variant_name(v), config.packaging);
        builder.chip(center);
        if (v.x_count > 0) builder.chips(ext_x, v.x_count);
        if (v.y_count > 0) builder.chips(ext_y, v.y_count);
        builder.quantity(config.quantity_each);
        if (config.reuse_package) builder.package_design("pkg:ocme_shared");
        family.add(builder.build());
    }
    return family;
}

design::SystemFamily make_ocme_soc_family(const OcmeConfig& config,
                                          const std::vector<OcmeVariant>& variants) {
    check(config, variants);
    design::SystemFamily family;
    for (const OcmeVariant& v : variants) {
        design::ChipBuilder chip_builder("soc_" + variant_name(v) + "_die",
                                         config.node);
        chip_builder.module("C_module", config.socket_area_mm2);
        for (unsigned i = 0; i < v.x_count; ++i) {
            chip_builder.module("X_module", config.socket_area_mm2);
        }
        for (unsigned i = 0; i < v.y_count; ++i) {
            chip_builder.module("Y_module", config.socket_area_mm2);
        }
        family.add(design::SystemBuilder("soc_" + variant_name(v), "SoC")
                       .chip(chip_builder.build())
                       .quantity(config.quantity_each)
                       .build());
    }
    return family;
}

}  // namespace chiplet::reuse
