#include "reuse/roi.h"

#include "util/error.h"

namespace chiplet::reuse {

ReuseReport reuse_report(const core::ChipletActuary& actuary,
                         const design::SystemFamily& family,
                         const design::SystemFamily& soc_reference) {
    CHIPLET_EXPECTS(family.size() == soc_reference.size(),
                    "family and reference must describe the same products");
    CHIPLET_EXPECTS(!family.empty(), "cannot report on an empty family");

    const core::FamilyCost cost = actuary.evaluate(family);
    const core::FamilyCost soc_cost = actuary.evaluate(soc_reference);

    ReuseReport report;
    report.systems = family.size();
    report.chip_designs = family.unique_chips().size();
    report.module_designs = family.unique_modules().size();
    report.package_designs = family.unique_package_designs().size();
    report.systems_per_chip_design =
        static_cast<double>(report.systems) /
        static_cast<double>(report.chip_designs);

    report.family_nre_usd = cost.nre_total();
    report.soc_nre_usd = soc_cost.nre_total();
    report.nre_saving = 1.0 - report.family_nre_usd / report.soc_nre_usd;

    report.avg_unit_cost = cost.average_unit_cost();
    report.soc_avg_unit_cost = soc_cost.average_unit_cost();
    report.cost_ratio = report.avg_unit_cost / report.soc_avg_unit_cost;
    return report;
}

}  // namespace chiplet::reuse
