#include "reuse/fsmc.h"

#include "design/builder.h"
#include "util/error.h"

namespace chiplet::reuse {

namespace {

void check(const FsmcConfig& config) {
    CHIPLET_EXPECTS(config.chiplet_types > 0, "need at least one chiplet type");
    CHIPLET_EXPECTS(config.sockets > 0, "need at least one socket");
    CHIPLET_EXPECTS(config.module_area_mm2 > 0.0, "module area must be positive");
}

std::vector<design::Chip> make_chiplets(const FsmcConfig& config) {
    std::vector<design::Chip> chips;
    for (unsigned t = 1; t <= config.chiplet_types; ++t) {
        const std::string name = "T" + std::to_string(t);
        chips.push_back(design::ChipBuilder(name, config.node)
                            .module(name + "_module", config.module_area_mm2)
                            .d2d(config.d2d_fraction)
                            .build());
    }
    return chips;
}

}  // namespace

design::SystemFamily make_fsmc_family(const FsmcConfig& config) {
    check(config);
    const std::vector<design::Chip> chiplets = make_chiplets(config);
    const auto collocations =
        enumerate_collocations(config.chiplet_types, config.sockets);

    design::SystemFamily family;
    for (const Collocation& c : collocations) {
        design::SystemBuilder builder(collocation_name(c), config.packaging);
        for (unsigned t = 0; t < config.chiplet_types; ++t) {
            if (c[t] > 0) builder.chips(chiplets[t], c[t]);
        }
        builder.quantity(config.quantity_each);
        if (config.reuse_package) {
            builder.package_design("pkg:fsmc_" + std::to_string(config.sockets) +
                                   "sockets");
        }
        family.add(builder.build());
    }
    return family;
}

design::SystemFamily make_fsmc_soc_family(const FsmcConfig& config) {
    check(config);
    const auto collocations =
        enumerate_collocations(config.chiplet_types, config.sockets);

    design::SystemFamily family;
    for (const Collocation& c : collocations) {
        design::ChipBuilder chip_builder("soc_" + collocation_name(c) + "_die",
                                         config.node);
        for (unsigned t = 0; t < config.chiplet_types; ++t) {
            for (unsigned i = 0; i < c[t]; ++i) {
                chip_builder.module("T" + std::to_string(t + 1) + "_module",
                                    config.module_area_mm2);
            }
        }
        family.add(design::SystemBuilder("soc_" + collocation_name(c), "SoC")
                       .chip(chip_builder.build())
                       .quantity(config.quantity_each)
                       .build());
    }
    return family;
}

}  // namespace chiplet::reuse
