#include "reuse/enumerate.h"

#include <numeric>

#include "util/error.h"

namespace chiplet::reuse {

namespace {

/// Extends `current` (counts for types [0, type)) whose counts sum to
/// `used`, appending every completion with exactly `total` chiplets.
void complete(Collocation& current, unsigned type, unsigned used, unsigned total,
              unsigned n_types, std::vector<Collocation>& out) {
    if (type == n_types - 1) {
        current.push_back(total - used);
        out.push_back(current);
        current.pop_back();
        return;
    }
    for (unsigned c = 0; c <= total - used; ++c) {
        current.push_back(c);
        complete(current, type + 1, used + c, total, n_types, out);
        current.pop_back();
    }
}

}  // namespace

std::vector<Collocation> enumerate_collocations(unsigned n_types,
                                                unsigned k_sockets) {
    CHIPLET_EXPECTS(n_types > 0, "need at least one chiplet type");
    CHIPLET_EXPECTS(k_sockets > 0, "need at least one socket");
    std::vector<Collocation> out;
    for (unsigned size = 1; size <= k_sockets; ++size) {
        Collocation current;
        complete(current, 0, 0, size, n_types, out);
    }
    return out;
}

unsigned occupied_sockets(const Collocation& c) {
    return std::accumulate(c.begin(), c.end(), 0u);
}

std::string collocation_name(const Collocation& c) {
    std::string name;
    for (std::size_t t = 0; t < c.size(); ++t) {
        if (c[t] == 0) continue;
        if (!name.empty()) name += "+";
        name += std::to_string(c[t]) + "xT" + std::to_string(t + 1);
    }
    return name.empty() ? "empty" : name;
}

}  // namespace chiplet::reuse
