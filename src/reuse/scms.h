// Single Chiplet Multiple Systems (paper Sec. 5.1, Fig. 8): one chiplet
// design builds a product line of 1X / 2X / 4X ... systems.  Suitable
// for "one production line with different grades".
#pragma once

#include "design/system.h"

namespace chiplet::reuse {

/// Parameters of an SCMS product line.  Defaults are the paper's Fig. 8
/// experiment: a 7 nm chiplet with 200 mm^2 of modules, systems of 1, 2
/// and 4 chiplets on MCM, 500k units each.
struct ScmsConfig {
    std::string chiplet_name = "x";
    std::string node = "7nm";
    double module_area_mm2 = 200.0;
    std::string packaging = "MCM";
    double d2d_fraction = 0.10;
    std::vector<unsigned> grades = {1, 2, 4};  ///< chiplets per system
    double quantity_each = 500'000.0;
    /// Share one package design (sized for the largest grade) across the
    /// whole line: saves package NRE, wastes substrate RE on small grades.
    bool reuse_package = false;
    /// Paper footnote 3: "Symmetrical placement requires a symmetrical
    /// chiplet; otherwise, two mirrored chiplets are necessary."  When
    /// set, multi-chiplet grades alternate a left- and a right-handed
    /// chip design — same module (shared NRE), but a second chip design
    /// with its own masks.
    bool mirrored_chiplets = false;
};

/// Builds the multi-chip family: one chiplet design, one system per
/// grade.  With `reuse_package`, all systems share the package design
/// `pkg:<chiplet_name>_scms`.
[[nodiscard]] design::SystemFamily make_scms_family(const ScmsConfig& config);

/// The monolithic reference: per grade, one SoC whose single chip holds
/// `grade x module_area` of modules (module design shared across grades,
/// chip designs distinct — paper Eq. 7 semantics).
[[nodiscard]] design::SystemFamily make_scms_soc_family(const ScmsConfig& config);

}  // namespace chiplet::reuse
