// One Center Multiple Extensions (paper Sec. 5.2, Fig. 9): a reused
// center die C surrounded by extension dies with a common footprint.
// The center can be moved to a mature node (heterogeneous integration)
// when its modules do not benefit from advanced process technology.
#pragma once

#include "design/system.h"

namespace chiplet::reuse {

/// Parameters of an OCME product line.  Defaults are the paper's Fig. 9
/// experiment: a 7 nm 4-socket system with 160 mm^2 per socket, center
/// die C, extension dies X and Y, 500k units per system; systems
/// C, C+1X, C+1X+1Y, C+2X+2Y.
struct OcmeConfig {
    std::string node = "7nm";         ///< extension (and default center) node
    std::string center_node = "7nm";  ///< set to e.g. "14nm" for heterogeneity
    /// When true, the center's modules are IO/analog-like: they keep
    /// their area when the center moves to another node.
    bool center_unscalable = false;
    double socket_area_mm2 = 160.0;  ///< module area per socket (C, X and Y alike)
    unsigned extension_sockets = 4;  ///< sockets around the center
    std::string packaging = "MCM";
    double d2d_fraction = 0.10;
    double quantity_each = 500'000.0;
    bool reuse_package = false;  ///< one package design across all systems
};

/// One product of the line: `x_count` X dies and `y_count` Y dies around
/// the center.
struct OcmeVariant {
    unsigned x_count = 0;
    unsigned y_count = 0;
};

/// The paper's four variants: C, C+1X, C+1X+1Y, C+2X+2Y.
[[nodiscard]] std::vector<OcmeVariant> default_ocme_variants();

/// Builds the multi-chip family for the given variants (defaults above).
[[nodiscard]] design::SystemFamily make_ocme_family(
    const OcmeConfig& config,
    const std::vector<OcmeVariant>& variants = default_ocme_variants());

/// The monolithic reference: per variant, one SoC die holding the center
/// module plus all extension modules, all manufactured at `config.node`.
[[nodiscard]] design::SystemFamily make_ocme_soc_family(
    const OcmeConfig& config,
    const std::vector<OcmeVariant>& variants = default_ocme_variants());

}  // namespace chiplet::reuse
