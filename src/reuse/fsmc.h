// A Few Sockets Multiple Collocations (paper Sec. 5.3, Fig. 10): a
// k-socket package populated with any multiset of n chiplet types yields
// sum_{i=1..k} C(n+i-1, i) distinct systems from n chip designs and one
// package design — the maximum-reuse scheme.
#pragma once

#include "design/system.h"
#include "reuse/enumerate.h"

namespace chiplet::reuse {

/// Parameters of an FSMC line.  The paper's Fig. 10 sweeps
/// (k, n) over {(2,2), (2,4), (3,4), (4,4), (4,6)} with 500k units per
/// system.
struct FsmcConfig {
    unsigned chiplet_types = 4;  ///< n
    unsigned sockets = 4;        ///< k
    std::string node = "7nm";
    double module_area_mm2 = 100.0;  ///< per-chiplet module area
    std::string packaging = "MCM";
    double d2d_fraction = 0.10;
    double quantity_each = 500'000.0;
    /// All systems share the k-socket package design (the scheme's
    /// premise).  Disable to give every collocation its own package.
    bool reuse_package = true;
};

/// Builds every collocation as a system.  Chiplet type t is a chip named
/// `T<t>` with module `T<t>_module`.
[[nodiscard]] design::SystemFamily make_fsmc_family(const FsmcConfig& config);

/// The monolithic reference: one SoC per collocation whose die holds the
/// collocation's modules (modules shared across SoCs; every SoC needs
/// its own chip design and package).
[[nodiscard]] design::SystemFamily make_fsmc_soc_family(const FsmcConfig& config);

}  // namespace chiplet::reuse
