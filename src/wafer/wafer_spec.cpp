#include "wafer/wafer_spec.h"

#include <numbers>

#include "util/error.h"

namespace chiplet::wafer {

double WaferSpec::gross_area_mm2() const {
    const double r = diameter_mm / 2.0;
    return std::numbers::pi * r * r;
}

double WaferSpec::usable_area_mm2() const {
    const double r = usable_radius_mm();
    return std::numbers::pi * r * r;
}

double WaferSpec::usable_radius_mm() const {
    return diameter_mm / 2.0 - edge_exclusion_mm;
}

double WaferSpec::price_per_mm2() const { return price_usd / gross_area_mm2(); }

void WaferSpec::validate() const {
    CHIPLET_EXPECTS(diameter_mm > 0.0, "wafer diameter must be positive");
    CHIPLET_EXPECTS(edge_exclusion_mm >= 0.0, "edge exclusion must be non-negative");
    CHIPLET_EXPECTS(edge_exclusion_mm < diameter_mm / 2.0,
                    "edge exclusion must be smaller than the wafer radius");
    CHIPLET_EXPECTS(scribe_width_mm >= 0.0, "scribe width must be non-negative");
    CHIPLET_EXPECTS(price_usd >= 0.0, "wafer price must be non-negative");
}

}  // namespace chiplet::wafer
