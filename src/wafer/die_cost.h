// Die manufacturing cost: wafer price spread over dies, divided by yield.
// Also provides the Fig. 2 normalisation (cost per good-die area relative
// to cost per raw-wafer area).
#pragma once

#include <memory>

#include "wafer/wafer_spec.h"
#include "yield/yield_model.h"

namespace chiplet::wafer {

/// Itemised cost of one die.
struct DieCostBreakdown {
    double dies_per_wafer = 0.0;   ///< estimator output (fractional)
    double yield = 0.0;            ///< die yield in (0, 1]
    double raw_cost_usd = 0.0;     ///< wafer price / dies per wafer
    double good_cost_usd = 0.0;    ///< raw cost / yield (cost of a KGD)
    double defect_cost_usd = 0.0;  ///< good - raw: loss attributed to defects

    /// Fig. 2 y-axis: (good cost / die area) / (wafer price / wafer area).
    double normalized_cost_per_area = 0.0;
};

/// Computes die cost for one process technology.  Immutable after
/// construction; cheap to copy via clone of the yield model.
class DieCostModel {
public:
    /// `defects_per_cm2` applies to every query; the yield model is owned.
    DieCostModel(WaferSpec spec, double defects_per_cm2,
                 std::unique_ptr<yield::YieldModel> model);

    DieCostModel(const DieCostModel& other);
    DieCostModel& operator=(const DieCostModel& other);
    DieCostModel(DieCostModel&&) noexcept = default;
    DieCostModel& operator=(DieCostModel&&) noexcept = default;
    ~DieCostModel() = default;

    /// Full breakdown for a square die of `die_area_mm2` using the
    /// classical die-per-wafer estimator.  Throws ParameterError when the
    /// die does not fit on the wafer at all.
    [[nodiscard]] DieCostBreakdown evaluate(double die_area_mm2) const;

    /// Yield only (paper Eq. 1 behaviour for this technology).
    [[nodiscard]] double die_yield(double die_area_mm2) const;

    [[nodiscard]] const WaferSpec& wafer() const { return spec_; }
    [[nodiscard]] double defect_density() const { return defects_per_cm2_; }
    [[nodiscard]] const yield::YieldModel& model() const { return *model_; }

private:
    WaferSpec spec_;
    double defects_per_cm2_;
    std::unique_ptr<yield::YieldModel> model_;
};

}  // namespace chiplet::wafer
