#include "wafer/die_cost_cache.h"

#include <array>
#include <atomic>
#include <bit>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

#include "yield/models.h"

namespace chiplet::wafer {

namespace {

/// Hashable, equality-comparable image of a DieCostQuery.  Doubles are
/// compared by bit pattern: keys are exact model inputs, not tolerances.
struct Key {
    std::uint64_t diameter, edge, scribe, price, defects, cluster, area;
    std::string yield_model;

    bool operator==(const Key&) const = default;
};

Key make_key(const DieCostQuery& q) {
    const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
    Key key;
    key.diameter = bits(q.wafer.diameter_mm);
    key.edge = bits(q.wafer.edge_exclusion_mm);
    key.scribe = bits(q.wafer.scribe_width_mm);
    key.price = bits(q.wafer.price_usd);
    key.defects = bits(q.defects_per_cm2);
    key.cluster = bits(q.cluster_param);
    key.area = bits(q.die_area_mm2);
    key.yield_model = q.yield_model;
    return key;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

struct KeyHash {
    std::size_t operator()(const Key& k) const {
        std::uint64_t h = std::hash<std::string>{}(k.yield_model);
        for (std::uint64_t v :
             {k.diameter, k.edge, k.scribe, k.price, k.defects, k.cluster, k.area}) {
            h = mix(h, v);
        }
        return static_cast<std::size_t>(h);
    }
};

/// Model (re)constructions across every thread and cache instance; the
/// practical granularity is fine because the engines share global().
std::atomic<std::uint64_t> g_model_setups{0};

DieCostBreakdown compute(const DieCostQuery& q) {
    // Misses arrive in runs over one technology (sweeps vary die area
    // innermost), so the model — and its yield::make_yield_model
    // allocation — is rebuilt only when the technology part of the
    // query changes, not once per miss.  thread_local keeps the reuse
    // race-free without a lock.
    struct TechKey {
        std::uint64_t diameter, edge, scribe, price, defects, cluster;
        std::string yield_model;

        bool operator==(const TechKey&) const = default;
    };
    thread_local TechKey cached_key;
    thread_local std::optional<DieCostModel> cached_model;

    const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
    TechKey key{bits(q.wafer.diameter_mm),     bits(q.wafer.edge_exclusion_mm),
                bits(q.wafer.scribe_width_mm), bits(q.wafer.price_usd),
                bits(q.defects_per_cm2),       bits(q.cluster_param),
                q.yield_model};
    if (!cached_model || !(key == cached_key)) {
        cached_model.emplace(
            q.wafer, q.defects_per_cm2,
            yield::make_yield_model(q.yield_model, q.cluster_param));
        cached_key = std::move(key);
        g_model_setups.fetch_add(1, std::memory_order_relaxed);
    }
    return cached_model->evaluate(q.die_area_mm2);
}

constexpr std::size_t kShardCount = 16;  // power of two, see shard_for()
// Monte-Carlo studies jitter defect density / wafer price per draw, so
// the key space is unbounded; evict by clearing a full shard.
constexpr std::size_t kMaxEntriesPerShard = 1 << 14;

}  // namespace

struct DieCostCache::Impl {
    struct Shard {
        mutable std::shared_mutex mutex;
        std::unordered_map<Key, DieCostBreakdown, KeyHash> map;
    };
    std::array<Shard, kShardCount> shards;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<bool> enabled{true};

    Shard& shard_for(const Key& key) {
        return shards[KeyHash{}(key) & (kShardCount - 1)];
    }
};

DieCostCache::DieCostCache() : impl_(new Impl) {}

DieCostCache::~DieCostCache() { delete impl_; }

DieCostBreakdown DieCostCache::evaluate(const DieCostQuery& query) {
    if (!impl_->enabled.load(std::memory_order_relaxed)) return compute(query);

    Key key = make_key(query);
    Impl::Shard& shard = impl_->shard_for(key);
    {
        std::shared_lock<std::shared_mutex> lock(shard.mutex);
        const auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            impl_->hits.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    impl_->misses.fetch_add(1, std::memory_order_relaxed);
    const DieCostBreakdown breakdown = compute(query);  // may throw; not cached
    {
        std::unique_lock<std::shared_mutex> lock(shard.mutex);
        if (shard.map.size() >= kMaxEntriesPerShard) shard.map.clear();
        shard.map.emplace(std::move(key), breakdown);
    }
    return breakdown;
}

void DieCostCache::clear() {
    for (auto& shard : impl_->shards) {
        std::unique_lock<std::shared_mutex> lock(shard.mutex);
        shard.map.clear();
    }
}

void DieCostCache::set_enabled(bool enabled) { impl_->enabled.store(enabled); }

bool DieCostCache::enabled() const { return impl_->enabled.load(); }

DieCostCache::Stats DieCostCache::stats() const {
    Stats out;
    out.hits = impl_->hits.load();
    out.misses = impl_->misses.load();
    out.model_setups = g_model_setups.load();
    for (const auto& shard : impl_->shards) {
        std::shared_lock<std::shared_mutex> lock(shard.mutex);
        out.entries += shard.map.size();
    }
    return out;
}

DieCostCache& DieCostCache::global() {
    static DieCostCache cache;
    return cache;
}

}  // namespace chiplet::wafer
