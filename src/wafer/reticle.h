// Lithographic reticle limits.  A monolithic die (or a monolithic 2.5D
// interposer) cannot exceed the scanner field; larger interposers require
// reticle stitching, which the paper points to as a limit of advanced
// packaging ("advanced packaging technologies still suffer from poor
// yield and area limit").
#pragma once

namespace chiplet::wafer {

/// Scanner field description.  Defaults are the industry-standard
/// full-field step-and-scan dimensions (26 mm x 33 mm = 858 mm^2).
struct ReticleSpec {
    double field_width_mm = 26.0;
    double field_height_mm = 33.0;

    [[nodiscard]] double area_mm2() const { return field_width_mm * field_height_mm; }
};

/// True when a square die of the given area fits in a single exposure
/// (either orientation of the best-fitting rectangle is considered by
/// testing the square side against both field dimensions).
[[nodiscard]] bool fits_single_reticle(const ReticleSpec& spec, double die_area_mm2);

/// Minimum number of stitched exposures needed to print a square die of
/// the given area (1 when it fits; computed as a grid of fields).
[[nodiscard]] unsigned stitch_count(const ReticleSpec& spec, double die_area_mm2);

/// Multiplicative yield penalty applied per stitched seam:
/// overall stitched yield = base_yield * stitch_yield^(stitches - 1).
/// Exposed as a helper so the interposer model can price stitched
/// interposers (stitch_yield typically 0.95-0.99).
[[nodiscard]] double stitched_yield(double base_yield, unsigned stitches,
                                    double stitch_yield);

}  // namespace chiplet::wafer
