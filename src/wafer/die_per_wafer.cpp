#include "wafer/die_per_wafer.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.h"

namespace chiplet::wafer {

namespace {

double footprint_area(const WaferSpec& spec, double die_area_mm2) {
    CHIPLET_EXPECTS(die_area_mm2 > 0.0, "die area must be positive");
    const double side = std::sqrt(die_area_mm2);
    const double grown = side + spec.scribe_width_mm;
    return grown * grown;
}

/// True when the axis-aligned rectangle [x0,x1]x[y0,y1] lies inside the
/// disc of radius r centred at the origin (checking the outermost corner
/// suffices because the disc is convex and centred).
bool rect_inside_disc(double x0, double y0, double x1, double y1, double r) {
    const double far_x = std::max(std::fabs(x0), std::fabs(x1));
    const double far_y = std::max(std::fabs(y0), std::fabs(y1));
    return far_x * far_x + far_y * far_y <= r * r;
}

}  // namespace

double dpw_area_ratio(const WaferSpec& spec, double die_area_mm2) {
    spec.validate();
    return spec.usable_area_mm2() / footprint_area(spec, die_area_mm2);
}

double dpw_classical(const WaferSpec& spec, double die_area_mm2) {
    spec.validate();
    const double footprint = footprint_area(spec, die_area_mm2);
    const double r = spec.usable_radius_mm();
    const double area_term = std::numbers::pi * r * r / footprint;
    const double edge_term = std::numbers::pi * 2.0 * r / std::sqrt(2.0 * footprint);
    return std::max(0.0, area_term - edge_term);
}

unsigned dpw_exact_grid(const WaferSpec& spec, double width_mm, double height_mm,
                        unsigned offsets_per_axis) {
    spec.validate();
    CHIPLET_EXPECTS(width_mm > 0.0 && height_mm > 0.0,
                    "die dimensions must be positive");
    CHIPLET_EXPECTS(offsets_per_axis > 0, "need at least one grid offset");

    const double r = spec.usable_radius_mm();
    const double pitch_x = width_mm + spec.scribe_width_mm;
    const double pitch_y = height_mm + spec.scribe_width_mm;
    if (width_mm > 2.0 * r || height_mm > 2.0 * r) return 0;

    const int max_i = static_cast<int>(std::ceil(2.0 * r / pitch_x)) + 1;
    const int max_j = static_cast<int>(std::ceil(2.0 * r / pitch_y)) + 1;

    unsigned best = 0;
    for (unsigned oi = 0; oi < offsets_per_axis; ++oi) {
        for (unsigned oj = 0; oj < offsets_per_axis; ++oj) {
            const double ox = pitch_x * static_cast<double>(oi) /
                              static_cast<double>(offsets_per_axis);
            const double oy = pitch_y * static_cast<double>(oj) /
                              static_cast<double>(offsets_per_axis);
            unsigned count = 0;
            for (int i = -max_i; i <= max_i; ++i) {
                const double x0 = ox + static_cast<double>(i) * pitch_x;
                const double x1 = x0 + width_mm;
                for (int j = -max_j; j <= max_j; ++j) {
                    const double y0 = oy + static_cast<double>(j) * pitch_y;
                    const double y1 = y0 + height_mm;
                    if (rect_inside_disc(x0, y0, x1, y1, r)) ++count;
                }
            }
            best = std::max(best, count);
        }
    }
    return best;
}

unsigned dpw_exact_grid_square(const WaferSpec& spec, double die_area_mm2,
                               unsigned offsets_per_axis) {
    CHIPLET_EXPECTS(die_area_mm2 > 0.0, "die area must be positive");
    const double side = std::sqrt(die_area_mm2);
    return dpw_exact_grid(spec, side, side, offsets_per_axis);
}

}  // namespace chiplet::wafer
