// Die-per-wafer estimators.  Three fidelity levels are provided:
//   1. area ratio        — usable area / die footprint (upper bound),
//   2. classical formula — the standard DPW approximation with a
//                          circumference-loss correction term,
//   3. exact grid        — integer count of rectangular dies placed on a
//                          grid inside the usable disc, optimised over
//                          grid offsets.
// The cost engine defaults to the classical formula (what the paper's
// sources use); the exact counter exists for validation and for small
// wafers where the approximation degrades.
#pragma once

#include "wafer/wafer_spec.h"

namespace chiplet::wafer {

/// Upper-bound estimate: usable wafer area divided by the die footprint
/// (die area grown by the scribe street).  Fractional result.
[[nodiscard]] double dpw_area_ratio(const WaferSpec& spec, double die_area_mm2);

/// Classical approximation:
///   DPW = pi r^2 / S' - pi 2r / sqrt(2 S')
/// with r the usable radius and S' the scribe-inclusive die footprint.
/// Returns 0 when the correction exceeds the first term (die too large).
[[nodiscard]] double dpw_classical(const WaferSpec& spec, double die_area_mm2);

/// Exact integer count of `width_mm` x `height_mm` dies (scribe added on
/// both axes) whose four corners all fall inside the usable disc, for the
/// best of `offsets_per_axis`^2 grid alignments.
[[nodiscard]] unsigned dpw_exact_grid(const WaferSpec& spec, double width_mm,
                                      double height_mm,
                                      unsigned offsets_per_axis = 8);

/// Convenience overload for square dies of the given area.
[[nodiscard]] unsigned dpw_exact_grid_square(const WaferSpec& spec,
                                             double die_area_mm2,
                                             unsigned offsets_per_axis = 8);

}  // namespace chiplet::wafer
