#include "wafer/reticle.h"

#include <cmath>

#include "util/error.h"

namespace chiplet::wafer {

bool fits_single_reticle(const ReticleSpec& spec, double die_area_mm2) {
    CHIPLET_EXPECTS(die_area_mm2 > 0.0, "die area must be positive");
    // A square die of side s fits iff s fits within both field dimensions.
    const double side = std::sqrt(die_area_mm2);
    return side <= spec.field_width_mm && side <= spec.field_height_mm;
}

unsigned stitch_count(const ReticleSpec& spec, double die_area_mm2) {
    CHIPLET_EXPECTS(die_area_mm2 > 0.0, "die area must be positive");
    const double side = std::sqrt(die_area_mm2);
    const auto fields_x =
        static_cast<unsigned>(std::ceil(side / spec.field_width_mm));
    const auto fields_y =
        static_cast<unsigned>(std::ceil(side / spec.field_height_mm));
    return fields_x * fields_y;
}

double stitched_yield(double base_yield, unsigned stitches, double stitch_yield) {
    CHIPLET_EXPECTS(base_yield > 0.0 && base_yield <= 1.0,
                    "base yield must lie in (0, 1]");
    CHIPLET_EXPECTS(stitch_yield > 0.0 && stitch_yield <= 1.0,
                    "stitch yield must lie in (0, 1]");
    CHIPLET_EXPECTS(stitches >= 1, "stitch count must be at least 1");
    return base_yield * std::pow(stitch_yield, static_cast<double>(stitches - 1));
}

}  // namespace chiplet::wafer
