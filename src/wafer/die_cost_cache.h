// Process-wide memoization of die-cost evaluations.  Exploration
// workloads (grids, Monte-Carlo draws, optimizer scans) evaluate the
// same (technology, die area) pair thousands of times; the breakdown is
// a pure function of its inputs, so repeated cells become lookups.
//
// The cache is thread-safe (sharded shared-mutex maps) and exact: a hit
// returns the bit-identical breakdown a fresh DieCostModel would
// compute, so cached and uncached runs — serial or parallel — agree.
#pragma once

#include <cstdint>
#include <string>

#include "wafer/die_cost.h"
#include "wafer/wafer_spec.h"

namespace chiplet::wafer {

/// Complete input set of one die-cost evaluation; everything that
/// `DieCostModel::evaluate` depends on.
struct DieCostQuery {
    WaferSpec wafer;
    double defects_per_cm2 = 0.0;
    std::string yield_model;     ///< factory name, see yield::make_yield_model
    double cluster_param = 10.0; ///< negative-binomial / Bose-Einstein param
    double die_area_mm2 = 0.0;
};

/// Sharded memo table from DieCostQuery to DieCostBreakdown.
class DieCostCache {
public:
    DieCostCache();
    ~DieCostCache();

    DieCostCache(const DieCostCache&) = delete;
    DieCostCache& operator=(const DieCostCache&) = delete;

    /// Returns the breakdown for `query`, computing and inserting on a
    /// miss.  Error behaviour matches DieCostModel (a die that does not
    /// fit the wafer throws ParameterError; failures are never cached).
    [[nodiscard]] DieCostBreakdown evaluate(const DieCostQuery& query);

    /// Drops every entry (counters keep running).
    void clear();

    /// Disables lookups and insertions; evaluate() then always computes.
    void set_enabled(bool enabled);
    [[nodiscard]] bool enabled() const;

    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::size_t entries = 0;
        /// DieCostModel (re)constructions performed by cache misses — the
        /// per-technology setup work the batch kernel path hoists.  The
        /// hoisting regression test (tests/test_die_batch.cpp) pins this:
        /// a batch evaluation must not grow it per candidate.
        std::uint64_t model_setups = 0;
    };
    [[nodiscard]] Stats stats() const;

    /// The cache shared by the cost engines (see core::ReModel).
    [[nodiscard]] static DieCostCache& global();

private:
    struct Impl;
    Impl* impl_;
};

}  // namespace chiplet::wafer
