// Physical and commercial description of a processed wafer.
#pragma once

namespace chiplet::wafer {

/// Processed-wafer parameters.  Defaults describe a 300 mm logic wafer.
struct WaferSpec {
    double diameter_mm = 300.0;      ///< full wafer diameter
    double edge_exclusion_mm = 3.0;  ///< unusable ring at the wafer edge
    double scribe_width_mm = 0.1;    ///< saw street between adjacent dies
    double price_usd = 0.0;          ///< foundry price per processed wafer

    /// Gross wafer area (mm^2) including the edge-exclusion ring; the
    /// paper normalises costs to "cost per area of the raw wafer", i.e.
    /// price / gross_area().
    [[nodiscard]] double gross_area_mm2() const;

    /// Area of the printable disc after edge exclusion (mm^2).
    [[nodiscard]] double usable_area_mm2() const;

    /// Usable radius after edge exclusion (mm).
    [[nodiscard]] double usable_radius_mm() const;

    /// Price per gross wafer area (USD / mm^2) — the paper's
    /// normalisation denominator.
    [[nodiscard]] double price_per_mm2() const;

    /// Validates invariants (positive diameter, exclusion smaller than
    /// radius, non-negative scribe/price); throws ParameterError.
    void validate() const;
};

}  // namespace chiplet::wafer
