#include "wafer/die_cost.h"

#include "util/error.h"
#include "wafer/die_per_wafer.h"

namespace chiplet::wafer {

DieCostModel::DieCostModel(WaferSpec spec, double defects_per_cm2,
                           std::unique_ptr<yield::YieldModel> model)
    : spec_(spec), defects_per_cm2_(defects_per_cm2), model_(std::move(model)) {
    spec_.validate();
    CHIPLET_EXPECTS(defects_per_cm2_ >= 0.0, "defect density must be non-negative");
    CHIPLET_EXPECTS(model_ != nullptr, "yield model must not be null");
}

DieCostModel::DieCostModel(const DieCostModel& other)
    : spec_(other.spec_),
      defects_per_cm2_(other.defects_per_cm2_),
      model_(other.model_->clone()) {}

DieCostModel& DieCostModel::operator=(const DieCostModel& other) {
    if (this != &other) {
        spec_ = other.spec_;
        defects_per_cm2_ = other.defects_per_cm2_;
        model_ = other.model_->clone();
    }
    return *this;
}

double DieCostModel::die_yield(double die_area_mm2) const {
    return model_->yield(defects_per_cm2_, die_area_mm2);
}

DieCostBreakdown DieCostModel::evaluate(double die_area_mm2) const {
    CHIPLET_EXPECTS(die_area_mm2 > 0.0, "die area must be positive");
    DieCostBreakdown out;
    out.dies_per_wafer = dpw_classical(spec_, die_area_mm2);
    if (out.dies_per_wafer <= 0.0) {
        throw ParameterError("die of " + std::to_string(die_area_mm2) +
                             " mm^2 does not fit on the wafer");
    }
    out.yield = die_yield(die_area_mm2);
    out.raw_cost_usd = spec_.price_usd / out.dies_per_wafer;
    out.good_cost_usd = out.raw_cost_usd / out.yield;
    out.defect_cost_usd = out.good_cost_usd - out.raw_cost_usd;
    out.normalized_cost_per_area =
        (out.good_cost_usd / die_area_mm2) / spec_.price_per_mm2();
    return out;
}

}  // namespace chiplet::wafer
