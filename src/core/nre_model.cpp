#include "core/nre_model.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace chiplet::core {

std::map<std::string, double> resolve_package_design_areas(
    const design::SystemFamily& family, const tech::TechLibrary& lib) {
    std::map<std::string, double> areas;
    std::map<std::string, std::string> tech_of;
    for (const design::System& s : family.systems()) {
        const double area = package_sizing_area(s, lib);
        auto [it, fresh] = areas.try_emplace(s.package_design(), area);
        if (!fresh) it->second = std::max(it->second, area);
        auto [tit, tfresh] = tech_of.try_emplace(s.package_design(), s.packaging());
        if (!tfresh) {
            CHIPLET_EXPECTS(tit->second == s.packaging(),
                            "package design '" + s.package_design() +
                                "' shared across different packaging technologies");
        }
    }
    return areas;
}

NreModel::NreModel(const tech::TechLibrary& lib, const Assumptions& assumptions)
    : lib_(&lib), assumptions_(&assumptions) {}

double NreModel::module_design_cost(const design::Module& module) const {
    const tech::ProcessNode& node = lib_->node(module.node);
    return node.module_nre_per_mm2 * module.area_mm2;
}

double NreModel::chip_design_cost(const design::Chip& chip) const {
    const tech::ProcessNode& node = lib_->node(chip.node());
    return node.chip_nre_per_mm2 * chip.area(*lib_) + node.fixed_chip_nre_usd();
}

double NreModel::package_design_cost(const std::string& packaging,
                                     double total_die_area_mm2) const {
    CHIPLET_EXPECTS(total_die_area_mm2 > 0.0, "package die area must be positive");
    const tech::PackagingTech& pkg = lib_->packaging(packaging);
    double cost = pkg.package_nre_per_mm2 * pkg.package_area_factor *
                      total_die_area_mm2 +
                  pkg.package_fixed_nre_usd;
    if (pkg.has_interposer()) {
        cost += lib_->node(pkg.interposer_node).mask_set_cost_usd;
    }
    return cost;
}

namespace {

/// Uses of one design: per-system instance counts and the family total.
struct UsageTally {
    double design_cost = 0.0;
    std::vector<double> instances_per_system;  // aligned with family systems
    double total_uses = 0.0;                   // sum of qty * instances
};

void finalize(UsageTally& tally, const design::SystemFamily& family) {
    tally.total_uses = 0.0;
    for (std::size_t i = 0; i < family.systems().size(); ++i) {
        tally.total_uses +=
            family.systems()[i].quantity() * tally.instances_per_system[i];
    }
}

/// Amortised per-unit share of one design for system i, plus the ledger
/// term recording it.  The share expression is exactly the historical
/// accumulation, so folding the emitted subtotals reproduces the
/// breakdown bit for bit; zero-instance systems get no term (adding 0.0
/// to a non-negative sum is exact, so skipping them preserves the fold).
/// `make_strings` builds the (id, label) pair and is only invoked when a
/// term is actually emitted — the ledger-free hot path never pays for
/// the string concatenation.
template <typename MakeStrings>
double amortised_share(const UsageTally& tally, std::size_t i,
                       std::vector<CostLedger>* ledgers,
                       MakeStrings&& make_strings, const char* paper_eq,
                       CostCategory category) {
    const double share = tally.design_cost * tally.instances_per_system[i] /
                         tally.total_uses;
    if (ledgers && tally.instances_per_system[i] > 0.0) {
        auto [id, label] = make_strings();
        (*ledgers)[i].terms.push_back(CostTerm{
            std::move(id), std::move(label), paper_eq, category,
            CostScope::per_design, tally.instances_per_system[i],
            tally.design_cost / tally.total_uses, share});
    }
    return share;
}

}  // namespace

NreResult NreModel::evaluate(const design::SystemFamily& family,
                             bool with_ledger) const {
    CHIPLET_EXPECTS(!family.empty(), "cannot evaluate an empty system family");
    const auto& systems = family.systems();
    NreResult out;
    out.per_system.resize(systems.size());
    std::vector<CostLedger>* ledgers = nullptr;
    if (with_ledger) {
        out.per_system_ledgers.resize(systems.size());
        ledgers = &out.per_system_ledgers;
    }

    // ---- module designs -------------------------------------------------------
    for (const design::Module& m : family.unique_modules()) {
        UsageTally tally;
        tally.design_cost = module_design_cost(m);
        tally.instances_per_system.resize(systems.size(), 0.0);
        for (std::size_t i = 0; i < systems.size(); ++i) {
            for (const design::ChipPlacement& p : systems[i].placements()) {
                for (const design::Module& cm : p.chip.modules()) {
                    if (cm.name == m.name) {
                        tally.instances_per_system[i] += p.count;
                    }
                }
            }
        }
        finalize(tally, family);
        out.modules_total += tally.design_cost;
        for (std::size_t i = 0; i < systems.size(); ++i) {
            out.per_system[i].modules += amortised_share(
                tally, i, ledgers,
                [&] {
                    return std::pair("nre.module." + m.name,
                                     "module design: " + m.name);
                },
                "Eq. 6", CostCategory::nre_modules);
        }
    }

    // ---- chip designs -----------------------------------------------------------
    for (const design::Chip& c : family.unique_chips()) {
        UsageTally tally;
        tally.design_cost = chip_design_cost(c);
        tally.instances_per_system.resize(systems.size(), 0.0);
        for (std::size_t i = 0; i < systems.size(); ++i) {
            for (const design::ChipPlacement& p : systems[i].placements()) {
                if (p.chip.name() == c.name()) tally.instances_per_system[i] += p.count;
            }
        }
        finalize(tally, family);
        out.chips_total += tally.design_cost;
        for (std::size_t i = 0; i < systems.size(); ++i) {
            out.per_system[i].chips += amortised_share(
                tally, i, ledgers,
                [&] {
                    return std::pair("nre.chip." + c.name(),
                                     "chip design: " + c.name() + " @ " +
                                         c.node());
                },
                "Eq. 6", CostCategory::nre_chips);
        }
    }

    // ---- package designs ----------------------------------------------------------
    const auto design_areas = resolve_package_design_areas(family, *lib_);
    for (const std::string& id : family.unique_package_designs()) {
        UsageTally tally;
        tally.instances_per_system.resize(systems.size(), 0.0);
        std::string packaging;
        for (std::size_t i = 0; i < systems.size(); ++i) {
            if (systems[i].package_design() == id) {
                tally.instances_per_system[i] = 1.0;
                packaging = systems[i].packaging();
            }
        }
        tally.design_cost = package_design_cost(packaging, design_areas.at(id));
        finalize(tally, family);
        out.packages_total += tally.design_cost;
        for (std::size_t i = 0; i < systems.size(); ++i) {
            out.per_system[i].packages += amortised_share(
                tally, i, ledgers,
                [&] {
                    return std::pair("nre.package." + id,
                                     "package design: " + id + " (" +
                                         packaging + ")");
                },
                "Eq. 7", CostCategory::nre_packages);
        }
    }

    // ---- D2D interface designs (once per node, paper Eq. 8) ---------------------------
    std::vector<std::string> d2d_nodes;
    for (const design::Chip& c : family.unique_chips()) {
        if (c.d2d_fraction() > 0.0 &&
            std::find(d2d_nodes.begin(), d2d_nodes.end(), c.node()) ==
                d2d_nodes.end()) {
            d2d_nodes.push_back(c.node());
        }
    }
    for (const std::string& node_name : d2d_nodes) {
        UsageTally tally;
        tally.design_cost = lib_->node(node_name).d2d_nre_usd;
        tally.instances_per_system.resize(systems.size(), 0.0);
        for (std::size_t i = 0; i < systems.size(); ++i) {
            for (const design::ChipPlacement& p : systems[i].placements()) {
                if (p.chip.d2d_fraction() > 0.0 && p.chip.node() == node_name) {
                    tally.instances_per_system[i] += p.count;
                }
            }
        }
        finalize(tally, family);
        out.d2d_total += tally.design_cost;
        for (std::size_t i = 0; i < systems.size(); ++i) {
            out.per_system[i].d2d += amortised_share(
                tally, i, ledgers,
                [&] {
                    return std::pair("nre.d2d." + node_name,
                                     "D2D interface design @ " + node_name);
                },
                "Eq. 8", CostCategory::nre_d2d);
        }
    }

    return out;
}

}  // namespace chiplet::core
