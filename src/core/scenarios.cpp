#include "core/scenarios.h"

#include "design/builder.h"
#include "design/partition.h"

namespace chiplet::core {

design::System monolithic_soc(const std::string& name, const std::string& node,
                              double module_area_mm2, double quantity) {
    design::Chip chip(name + "_die", node,
                      {design::Module{name + "_logic", module_area_mm2, node, true}},
                      0.0);
    return design::SystemBuilder(name, "SoC").chip(std::move(chip)).quantity(quantity).build();
}

design::System split_system(const std::string& name, const std::string& node,
                            const std::string& packaging, double module_area_mm2,
                            unsigned k, double d2d_fraction, double quantity) {
    design::SystemBuilder builder(name, packaging);
    for (design::Chip& chip :
         design::split_homogeneous(name, node, module_area_mm2, k, d2d_fraction)) {
        builder.chip(std::move(chip));
    }
    return builder.quantity(quantity).build();
}

}  // namespace chiplet::core
