// Itemised cost ledger: the provenance IR of the cost engines.  Instead
// of only accumulating into the five RE and four NRE doubles of
// core/cost_result.h, the engines can emit one CostTerm per priced
// line item — which die, which packaging material, which amortised
// design — tagged with the paper equation it implements.  The classic
// breakdowns are then a pure fold of the ledger: fold_re()/fold_nre()
// add subtotals in emission order, which reproduces the engines'
// accumulation order, so the folded totals are bit-identical to the
// directly accumulated ones (asserted by tests/test_cost_ledger.cpp and
// the golden-file diff at --tol 0).
#pragma once

#include <string>
#include <vector>

namespace chiplet::core {

struct ReBreakdown;
struct NreBreakdown;

/// Which breakdown bucket a term folds into.  The first five mirror
/// ReBreakdown (paper Sec. 3.2), the last four NreBreakdown (Sec. 3.3).
enum class CostCategory {
    raw_chips,
    chip_defects,
    raw_package,
    package_defects,
    wasted_kgd,
    nre_modules,
    nre_chips,
    nre_packages,
    nre_d2d,
};

/// Accounting scope of a term: priced once per die placement, once per
/// manufactured package, or once per design (then amortised per unit).
enum class CostScope { per_die, per_package, per_design };

[[nodiscard]] const char* to_string(CostCategory category);
[[nodiscard]] const char* to_string(CostScope scope);

/// Inverse of to_string; throws ParseError naming the bad token and the
/// valid choices.
[[nodiscard]] CostCategory cost_category_from_string(const std::string& s);
[[nodiscard]] CostScope cost_scope_from_string(const std::string& s);

/// One priced line item.  `subtotal_usd` is authoritative — it is the
/// exact double the engine accumulated; `quantity` x `unit_cost_usd` is
/// the human-readable decomposition and may differ from the subtotal in
/// the last ulp (amortised NRE terms divide in a different order).
struct CostTerm {
    std::string id;        ///< stable slug, e.g. "re.die.raw.compute"
    std::string label;     ///< human description, e.g. "raw dies: compute"
    std::string paper_eq;  ///< provenance tag, e.g. "Eq. 4"
    CostCategory category = CostCategory::raw_chips;
    CostScope scope = CostScope::per_die;
    double quantity = 0.0;       ///< count / consumption factor
    double unit_cost_usd = 0.0;  ///< cost per unit of `quantity`
    double subtotal_usd = 0.0;   ///< exact contribution to the breakdown

    bool operator==(const CostTerm&) const = default;
};

/// Ordered term list for one system (per manufactured unit).  Terms
/// appear in the order the engines price them — dies in bonding order
/// (top of a 3D stack first), then package materials, then assembly
/// losses, then amortised NRE — and the folds below depend on that
/// order for bit-identity, so it must be preserved.
struct CostLedger {
    std::vector<CostTerm> terms;

    [[nodiscard]] bool empty() const { return terms.empty(); }

    /// Folds the RE terms into the five-way breakdown, adding subtotals
    /// in ledger order; bit-identical to ReModel's own accumulation.
    [[nodiscard]] ReBreakdown fold_re() const;

    /// Folds the NRE terms likewise; bit-identical to the NreModel
    /// per-system amortisation.
    [[nodiscard]] NreBreakdown fold_nre() const;

    /// Sum of every subtotal in ledger order (display only; the
    /// per-breakdown totals are the bit-identical surface).
    [[nodiscard]] double total_usd() const;

    bool operator==(const CostLedger&) const = default;
};

/// True for the categories that fold into ReBreakdown.
[[nodiscard]] constexpr bool is_re_category(CostCategory category) {
    return category == CostCategory::raw_chips ||
           category == CostCategory::chip_defects ||
           category == CostCategory::raw_package ||
           category == CostCategory::package_defects ||
           category == CostCategory::wasted_kgd;
}

}  // namespace chiplet::core
