// Design audit: early-stage sanity diagnostics for an evaluated system
// — the "careful evaluation" the paper warns is needed before adopting
// a multi-chiplet architecture.  Produces structured warnings a designer
// (or the CLI) can act on; never throws for model results it merely
// dislikes.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/actuary.h"
#include "design/system.h"

namespace chiplet::core {

/// Severity of an audit finding.
enum class Severity { info, warning, critical };

[[nodiscard]] std::string to_string(Severity severity);

/// One diagnostic finding.
struct AuditFinding {
    Severity severity = Severity::info;
    std::string code;     ///< stable machine-readable id, e.g. "reticle.exceeded"
    std::string message;  ///< human-readable explanation with numbers
};

/// Rule thresholds (defaults chosen from the paper's discussion).
struct AuditConfig {
    double max_die_yield_warn = 0.40;      ///< die yield below this: warning
    double packaging_share_warn = 0.40;    ///< packaging > 40% of RE: warning
    double nre_share_warn = 0.60;          ///< amortised NRE > 60%: warning
    double d2d_fraction_warn = 0.20;       ///< D2D > 20% of a die: warning
    unsigned die_count_warn = 8;           ///< more dies than this: warning
    wafer::ReticleSpec reticle;            ///< single-exposure limit
};

/// Audits a system under the given actuary.  Checks include:
///   - dies exceeding the reticle field (critical for logic dies),
///   - interposers needing stitching (info) or exceeding 4 fields
///     (warning),
///   - die yield below threshold (the monolithic trap),
///   - packaging share of RE above threshold (the chiplet trap),
///   - amortised NRE dominating unit cost (quantity too low),
///   - excessive D2D area fraction and deep multi-die assemblies.
/// Returns findings sorted by descending severity.
[[nodiscard]] std::vector<AuditFinding> audit_system(
    const ChipletActuary& actuary, const design::System& system,
    const AuditConfig& config = {});

/// True when no finding is `critical`.
[[nodiscard]] bool audit_passes(const std::vector<AuditFinding>& findings);

/// Geometry-only pre-screen: applies the one critical per-die rule of
/// audit_system — the single-exposure reticle bound — to bare die areas,
/// with no cost evaluation.  The design-space explorer uses this to
/// prune candidates before they ever reach the RE/NRE engines; a false
/// here is exactly a `reticle.exceeded` critical from audit_system.
[[nodiscard]] bool audit_dies_feasible(std::span<const double> die_areas_mm2,
                                       const AuditConfig& config = {});

}  // namespace chiplet::core
