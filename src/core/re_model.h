// Recurring-engineering cost engine (paper Sec. 3.2).
//
// Cost of one good unit = dies + packaging, where packaging follows
// paper Eq. 4 generalised to all four integration schemes:
//
//   bonding target = interposer (InFO/2.5D) or substrate (SoC/MCM)
//   y1 = target manufacture yield (1 for substrates, which arrive tested)
//   y2 = per-chip bond yield, applied once per die (y2^n)
//   y3 = target-to-substrate attach yield (1 when target IS the substrate)
//
//   interposer consumption  : 1 / (y1 y2^n y3)
//   substrate consumption   : 1 / y3          (interposer schemes)
//                             1 / (y2^n)      (direct-attach schemes)
//   KGD consumption         : 1 / (y2^n y3)          [chip-last, Eq. 5]
//                             1 / (y1 y2^n y3)       [chip-first, Eq. 5]
//
// Chip-first embeds dies before the RDL/interposer is formed, so target
// manufacture loss (y1) scraps known good dies as well — the paper's
// reason to prefer chip-last for multi-chip systems.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cost_result.h"
#include "design/system.h"
#include "tech/tech_library.h"
#include "wafer/reticle.h"

namespace chiplet::yield {
class YieldModel;
}  // namespace chiplet::yield

namespace chiplet::kernels {
class DieBatch;
}  // namespace chiplet::kernels

namespace chiplet::core {

/// Evaluation knobs shared by the RE and NRE engines.
struct Assumptions {
    /// Assembly order (paper Eq. 5); experiments default to chip-last.
    tech::PackagingFlow flow = tech::PackagingFlow::chip_last;

    /// Die yield model name: "seeds_negative_binomial" (paper Eq. 1),
    /// "poisson", "murphy" or "seeds_exponential".  The clustering
    /// parameter always comes from the process node.
    std::string yield_model = "seeds_negative_binomial";

    /// Silicon interposers larger than one reticle field are stitched;
    /// each extra exposure multiplies interposer yield by stitch_yield.
    bool apply_reticle_stitching = true;
    double stitch_yield = 0.98;
    wafer::ReticleSpec reticle;
};

/// The die area a system's package/interposer must be sized for: the
/// sum of die areas for planar schemes, the largest die's footprint for
/// 3D stacks (vertical integration is exactly what shrinks it).
[[nodiscard]] double package_sizing_area(const design::System& system,
                                         const tech::TechLibrary& lib);

/// Computes the per-unit RE cost of a system.  Holds only references to
/// the library/assumptions (both must outlive the model) plus a lazily
/// built yield-model cache; because that cache is unsynchronised, one
/// ReModel instance must not be shared across threads — the parallel
/// paths construct one per evaluation, which is cheap.
class ReModel {
public:
    /// `die_batch`, when given, is a pre-priced kernels::DieBatch the
    /// die-pricing step consults before the memo cache; a hit returns
    /// the bit-identical economics, a miss (or nullptr) takes the
    /// scalar path unchanged.  Non-owning; must outlive the model.
    ReModel(const tech::TechLibrary& lib, const Assumptions& assumptions,
            const kernels::DieBatch* die_batch = nullptr);
    ~ReModel();

    ReModel(const ReModel&) = delete;
    ReModel& operator=(const ReModel&) = delete;

    /// Full RE breakdown for one system.  `package_design_area_mm2`
    /// overrides the total-die-area the package/interposer is sized for;
    /// pass <= 0 to size the package for this very system.  (Package
    /// reuse prices a small system inside a bigger system's package.)
    /// With `with_ledger`, SystemCost::ledger itemises every RE term;
    /// the breakdown doubles are unchanged either way and the ledger
    /// folds back to them bit for bit.
    [[nodiscard]] SystemCost evaluate(const design::System& system,
                                      double package_design_area_mm2 = 0.0,
                                      bool with_ledger = false) const;

    /// Die yield for a chip design (paper Eq. 1 at the chip's node).
    [[nodiscard]] double die_yield(const design::Chip& chip) const;

    /// Cost of one known good die (raw / yield), incl. bump + sort test.
    [[nodiscard]] double kgd_cost(const design::Chip& chip) const;

private:
    /// The assumptions' yield model at this clustering parameter,
    /// constructed once per distinct parameter instead of per call.
    [[nodiscard]] const yield::YieldModel& yield_model_for(
        double cluster_param) const;

    const tech::TechLibrary* lib_;
    const Assumptions* assumptions_;
    const kernels::DieBatch* die_batch_;  ///< optional batch accelerator
    /// Tiny linear-scan cache: process nodes are few, lookups are cheap.
    mutable std::vector<std::pair<double, std::unique_ptr<yield::YieldModel>>>
        yield_models_;
};

}  // namespace chiplet::core
