// Scenario constructors for the paper's recurring workloads: a monolithic
// SoC of a given module area, and the same area split into k chiplets on
// a multi-die integration (paper Sec. 4.1/4.2).  These keep benches and
// examples small and are reused by the exploration tools.
#pragma once

#include <string>

#include "design/system.h"

namespace chiplet::core {

/// A monolithic SoC: one chip with one `module_area_mm2` module at
/// `node`, packaged with the "SoC" technology.
[[nodiscard]] design::System monolithic_soc(const std::string& name,
                                            const std::string& node,
                                            double module_area_mm2,
                                            double quantity);

/// The same module area split into `k` equal chiplets, integrated with
/// `packaging` ("MCM", "InFO" or "2.5D"); each chiplet spends
/// `d2d_fraction` of its die area on D2D interfaces.  With k == 1 and a
/// multi-die packaging this models a single-die MCM/InFO/2.5D package
/// (the paper's k=1 columns).
[[nodiscard]] design::System split_system(const std::string& name,
                                          const std::string& node,
                                          const std::string& packaging,
                                          double module_area_mm2, unsigned k,
                                          double d2d_fraction, double quantity);

}  // namespace chiplet::core
