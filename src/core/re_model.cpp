#include "core/re_model.h"

#include <algorithm>

#include "kernels/die_batch.h"
#include "util/error.h"
#include "wafer/die_cost.h"
#include "wafer/die_cost_cache.h"
#include "yield/composite.h"
#include "yield/models.h"

namespace chiplet::core {

namespace {

/// Raw cost (defect-free share) and yield of one die design.
struct DieEconomics {
    double raw_usd = 0.0;
    double yield = 1.0;
};

DieEconomics price_die(const tech::ProcessNode& node, double area_mm2,
                       const std::string& yield_model_name,
                       const kernels::DieBatch* batch) {
    // Batch evaluations pre-price their whole die set with the SoA
    // kernels; a batch hit is bit-identical to the computation below.
    // Misses (and unusable entries — the batch never serves a die the
    // scalar path would diagnose) fall through so errors have one home.
    if (batch != nullptr) {
        if (const auto priced = batch->find(node, area_mm2)) {
            return DieEconomics{priced->raw_usd, priced->yield};
        }
    }
    // Grid sweeps and Monte-Carlo batches re-price identical dies over and
    // over; the memo table turns the repeats into lookups.
    wafer::DieCostQuery query;
    query.wafer = node.wafer_spec();
    query.defects_per_cm2 = node.defect_density_cm2;
    query.yield_model = yield_model_name;
    query.cluster_param = node.cluster_param;
    query.die_area_mm2 = area_mm2;
    const wafer::DieCostBreakdown breakdown =
        wafer::DieCostCache::global().evaluate(query);
    DieEconomics out;
    out.raw_usd = breakdown.raw_cost_usd +
                  (node.bump_cost_per_mm2 + node.test_cost_per_mm2) * area_mm2;
    out.yield = breakdown.yield;
    return out;
}

void add_term(CostLedger* ledger, std::string id, std::string label,
              std::string paper_eq, CostCategory category, CostScope scope,
              double quantity, double unit_cost_usd, double subtotal_usd) {
    if (!ledger) return;
    ledger->terms.push_back(CostTerm{std::move(id), std::move(label),
                                     std::move(paper_eq), category, scope,
                                     quantity, unit_cost_usd, subtotal_usd});
}

}  // namespace

double package_sizing_area(const design::System& system,
                           const tech::TechLibrary& lib) {
    const tech::PackagingTech& pkg = lib.packaging(system.packaging());
    if (!pkg.stacked()) return system.total_die_area(lib);
    double footprint = 0.0;
    for (const design::ChipPlacement& p : system.placements()) {
        footprint = std::max(footprint, p.chip.area(lib));
    }
    return footprint;
}

ReModel::ReModel(const tech::TechLibrary& lib, const Assumptions& assumptions,
                 const kernels::DieBatch* die_batch)
    : lib_(&lib), assumptions_(&assumptions), die_batch_(die_batch) {}

ReModel::~ReModel() = default;

const yield::YieldModel& ReModel::yield_model_for(double cluster_param) const {
    for (const auto& [param, model] : yield_models_) {
        if (param == cluster_param) return *model;
    }
    yield_models_.emplace_back(
        cluster_param,
        yield::make_yield_model(assumptions_->yield_model, cluster_param));
    return *yield_models_.back().second;
}

double ReModel::die_yield(const design::Chip& chip) const {
    const tech::ProcessNode& node = lib_->node(chip.node());
    return yield_model_for(node.cluster_param)
        .yield(node.defect_density_cm2, chip.area(*lib_));
}

double ReModel::kgd_cost(const design::Chip& chip) const {
    const tech::ProcessNode& node = lib_->node(chip.node());
    const DieEconomics econ =
        price_die(node, chip.area(*lib_), assumptions_->yield_model, die_batch_);
    return econ.raw_usd / econ.yield;
}

SystemCost ReModel::evaluate(const design::System& system,
                             double package_design_area_mm2,
                             bool with_ledger) const {
    const tech::PackagingTech& pkg = lib_->packaging(system.packaging());
    if (!pkg.multi_die()) {
        CHIPLET_EXPECTS(system.die_count() == 1,
                        "SoC packaging cannot hold more than one die");
    }

    SystemCost out;
    out.system_name = system.name();
    out.quantity = system.quantity();
    CostLedger* ledger = with_ledger ? &out.ledger : nullptr;

    // ---- dies ----------------------------------------------------------------
    // In a 3D stack every die except the top one carries TSVs; the top
    // die is taken to be one instance of the last placement.
    unsigned tsv_free_remaining = pkg.stacked() ? 1u : 0u;
    double kgd_total = 0.0;
    for (auto it = system.placements().rbegin(); it != system.placements().rend();
         ++it) {
        const design::ChipPlacement& placement = *it;
        const design::Chip& chip = placement.chip;
        const tech::ProcessNode& node = lib_->node(chip.node());
        const double area = chip.area(*lib_);
        DieEconomics econ =
            price_die(node, area, assumptions_->yield_model, die_batch_);
        const double n = static_cast<double>(placement.count);
        double tsv_total = 0.0;
        if (pkg.stacked()) {
            const double tsv_dies =
                n - static_cast<double>(std::min(tsv_free_remaining, placement.count));
            tsv_free_remaining -= std::min(tsv_free_remaining, placement.count);
            tsv_total = pkg.tsv_cost_per_mm2 * area * tsv_dies;
            // Spread TSV cost evenly over this placement's dies; it scales
            // with 1/yield like the rest of the wafer processing.
            econ.raw_usd += tsv_total / n;
        }
        const double kgd = econ.raw_usd / econ.yield;
        const double raw_subtotal = econ.raw_usd * n;
        const double defect_subtotal = (kgd - econ.raw_usd) * n;

        out.re.raw_chips += raw_subtotal;
        out.re.chip_defects += defect_subtotal;
        kgd_total += kgd * n;

        if (ledger) {
            add_term(ledger, "re.die.raw." + chip.name(),
                     "raw dies: " + chip.name() + " @ " + chip.node() +
                         (tsv_total > 0.0 ? " (incl. TSV)" : ""),
                     "Eq. 1-2", CostCategory::raw_chips, CostScope::per_die, n,
                     econ.raw_usd, raw_subtotal);
            add_term(ledger, "re.die.defects." + chip.name(),
                     "die-yield loss: " + chip.name(), "Eq. 1",
                     CostCategory::chip_defects, CostScope::per_die, n,
                     kgd - econ.raw_usd, defect_subtotal);
        }

        DieReport report;
        report.chip_name = chip.name();
        report.node = chip.node();
        report.count = placement.count;
        report.area_mm2 = area;
        report.d2d_area_mm2 = chip.d2d_area(*lib_);
        report.yield = econ.yield;
        report.raw_cost_usd = econ.raw_usd;
        report.kgd_cost_usd = kgd;
        out.dies.push_back(std::move(report));
    }
    // The stack loop walks placements in reverse; reports follow the
    // declaration order for stable output.  (The ledger keeps the
    // pricing order — the folds depend on it for bit-identity.)
    std::reverse(out.dies.begin(), out.dies.end());

    // ---- package materials -----------------------------------------------------
    const double own_die_area = package_sizing_area(system, *lib_);
    const double design_area = std::max(own_die_area, package_design_area_mm2);
    out.package_design_area_mm2 = pkg.package_area_factor * design_area;

    const double substrate_cost = out.package_design_area_mm2 *
                                  pkg.substrate_cost_per_mm2 *
                                  pkg.substrate_layer_factor;

    double interposer_raw = 0.0;
    double interposer_yield = 1.0;
    if (pkg.has_interposer()) {
        const tech::ProcessNode& inode = lib_->node(pkg.interposer_node);
        out.interposer_area_mm2 = pkg.interposer_area_factor * design_area;
        const DieEconomics econ = price_die(
            inode, out.interposer_area_mm2, assumptions_->yield_model, die_batch_);
        // Paper Sec. 3.2: bump cost is counted twice for interposer schemes
        // (chip side and substrate side); price_die already added one side.
        interposer_raw =
            econ.raw_usd + inode.bump_cost_per_mm2 * out.interposer_area_mm2;
        interposer_yield = econ.yield;
        if (assumptions_->apply_reticle_stitching &&
            pkg.type == tech::IntegrationType::interposer) {
            const unsigned stitches =
                wafer::stitch_count(assumptions_->reticle, out.interposer_area_mm2);
            interposer_yield = wafer::stitched_yield(
                interposer_yield, stitches, assumptions_->stitch_yield);
        }
    }

    const double n_dies = system.die_count();
    const double bond_and_test = pkg.bond_cost_per_chip_usd * n_dies +
                                 pkg.package_test_cost_usd +
                                 pkg.package_base_cost_usd;

    out.re.raw_package = substrate_cost + interposer_raw + bond_and_test;

    if (ledger) {
        add_term(ledger, "re.package.substrate",
                 "substrate: " + system.packaging(), "Eq. 4",
                 CostCategory::raw_package, CostScope::per_package,
                 out.package_design_area_mm2,
                 pkg.substrate_cost_per_mm2 * pkg.substrate_layer_factor,
                 substrate_cost);
        if (pkg.has_interposer()) {
            add_term(ledger, "re.package.interposer",
                     "interposer @ " + pkg.interposer_node, "Eq. 4",
                     CostCategory::raw_package, CostScope::per_package, 1.0,
                     interposer_raw, interposer_raw);
        }
        add_term(ledger, "re.package.bond_test",
                 "bonding + package test + base", "Eq. 4",
                 CostCategory::raw_package, CostScope::per_package, n_dies,
                 pkg.bond_cost_per_chip_usd, bond_and_test);
    }

    // ---- assembly yields (Eq. 4) -------------------------------------------------
    // Planar schemes bond every die (n attaches); a 3D stack of n dies
    // has n-1 bond interfaces.
    const unsigned bond_steps =
        pkg.stacked() ? system.die_count() - 1 : system.die_count();
    const double y1 = interposer_yield;
    const double y2n = yield::repeated_yield(pkg.chip_bond_yield, bond_steps);
    const double y3 = pkg.substrate_bond_yield;

    if (pkg.has_interposer()) {
        const double interposer_scrap =
            interposer_raw * (1.0 / (y1 * y2n * y3) - 1.0);
        const double substrate_scrap = substrate_cost * (1.0 / y3 - 1.0);
        const double bond_scrap =
            bond_and_test * yield::scrap_factor(y2n * y3);
        out.re.package_defects =
            interposer_scrap + substrate_scrap + bond_scrap;
        if (ledger) {
            add_term(ledger, "re.package.defects.interposer",
                     "interposer scrapped by assembly loss", "Eq. 4",
                     CostCategory::package_defects, CostScope::per_package,
                     1.0 / (y1 * y2n * y3) - 1.0, interposer_raw,
                     interposer_scrap);
            add_term(ledger, "re.package.defects.substrate",
                     "substrates scrapped by attach loss", "Eq. 4",
                     CostCategory::package_defects, CostScope::per_package,
                     1.0 / y3 - 1.0, substrate_cost, substrate_scrap);
            add_term(ledger, "re.package.defects.bond",
                     "bonding + test repeated on scrap", "Eq. 4",
                     CostCategory::package_defects, CostScope::per_package,
                     yield::scrap_factor(y2n * y3), bond_and_test, bond_scrap);
        }
    } else {
        const double package_scrap =
            (substrate_cost + bond_and_test) * yield::scrap_factor(y2n * y3);
        out.re.package_defects = package_scrap;
        if (ledger) {
            add_term(ledger, "re.package.defects",
                     "package materials scrapped by assembly loss", "Eq. 4",
                     CostCategory::package_defects, CostScope::per_package,
                     yield::scrap_factor(y2n * y3),
                     substrate_cost + bond_and_test, package_scrap);
        }
    }

    const double kgd_factor = assumptions_->flow == tech::PackagingFlow::chip_last
                                  ? yield::scrap_factor(y2n * y3)
                                  : yield::scrap_factor(y1 * y2n * y3);
    const double wasted_kgd = kgd_total * kgd_factor;
    out.re.wasted_kgd = wasted_kgd;
    if (ledger) {
        add_term(ledger, "re.package.wasted_kgd",
                 std::string("known good dies destroyed by packaging (") +
                     (assumptions_->flow == tech::PackagingFlow::chip_last
                          ? "chip-last"
                          : "chip-first") +
                     ")",
                 "Eq. 5", CostCategory::wasted_kgd, CostScope::per_package,
                 kgd_factor, kgd_total, wasted_kgd);
    }

    return out;
}

}  // namespace chiplet::core
