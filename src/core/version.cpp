#include "core/version.h"

#include <bit>
#include <mutex>
#include <string_view>

#include "core/actuary.h"
#include "core/cost_ledger.h"
#include "tech/json_io.h"

namespace chiplet::core {

namespace {

// Same FNV-1a constants as explore/spec_hash.h; redeclared locally so
// core does not depend upward on explore.  Strings are length-prefixed
// (adjacent fields can never alias) and doubles contribute their exact
// bit pattern.
struct Fnv {
    std::uint64_t state = 1469598103934665603ull;

    void bytes(const void* data, std::size_t n) {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            state ^= p[i];
            state *= 1099511628211ull;
        }
    }
    void u64(std::uint64_t v) { bytes(&v, sizeof v); }
    void real(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void str(std::string_view s) {
        u64(s.size());
        bytes(s.data(), s.size());
    }
};

constexpr CostCategory kCategories[] = {
    CostCategory::raw_chips,    CostCategory::chip_defects,
    CostCategory::raw_package,  CostCategory::package_defects,
    CostCategory::wasted_kgd,   CostCategory::nre_modules,
    CostCategory::nre_chips,    CostCategory::nre_packages,
    CostCategory::nre_d2d,
};
constexpr CostScope kScopes[] = {CostScope::per_die, CostScope::per_package,
                                 CostScope::per_design};

}  // namespace

std::uint64_t model_fingerprint(const ChipletActuary& actuary) {
    Fnv h;
    h.u64(static_cast<std::uint64_t>(kModelSchemaVersion));

    // Ledger vocabulary: renaming or reordering a category changes what
    // persisted ledgers mean.
    h.u64(std::size(kCategories));
    for (const CostCategory category : kCategories) h.str(to_string(category));
    h.u64(std::size(kScopes));
    for (const CostScope scope : kScopes) h.str(to_string(scope));

    // Assumptions: every knob the RE/NRE engines read.
    const Assumptions& a = actuary.assumptions();
    h.u64(static_cast<std::uint64_t>(a.flow));
    h.str(a.yield_model);
    h.u64(a.apply_reticle_stitching ? 1 : 0);
    h.real(a.stitch_yield);
    h.real(a.reticle.field_width_mm);
    h.real(a.reticle.field_height_mm);

    // The whole tech library through its canonical JSON document: every
    // node constant, packaging price, and defect density participates,
    // so a calibrated library never shares entries with the catalogue.
    h.str(tech::to_json(actuary.library()).dump());
    return h.state;
}

std::uint64_t model_fingerprint() {
    static std::once_flag once;
    static std::uint64_t cached = 0;
    std::call_once(once, [] { cached = model_fingerprint(ChipletActuary{}); });
    return cached;
}

std::string model_version_string(std::uint64_t fingerprint) {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string hex(16, '0');
    for (int i = 15; i >= 0; --i) {
        hex[static_cast<std::size_t>(i)] = kHex[fingerprint & 0xf];
        fingerprint >>= 4;
    }
    return "model-schema " + std::to_string(kModelSchemaVersion) +
           ", fingerprint " + hex;
}

std::string model_version_string() {
    return model_version_string(model_fingerprint());
}

}  // namespace chiplet::core
