// ChipletActuary — the library facade.  Owns a technology library and a
// set of model assumptions; evaluates systems and system families into
// full RE + amortised-NRE cost pictures.
//
//   using namespace chiplet;
//   core::ChipletActuary actuary;                  // built-in catalogue
//   auto soc = core::monolithic_soc("big", "5nm", 800.0, 500'000);
//   core::SystemCost cost = actuary.evaluate(soc);
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/cost_result.h"
#include "core/nre_model.h"
#include "core/re_model.h"
#include "design/system.h"
#include "tech/tech_library.h"

namespace chiplet::kernels {
class DieBatch;
}  // namespace chiplet::kernels

namespace chiplet::core {

/// Read-only memo of single-system evaluations, consulted by the
/// evaluate entry points before pricing.  A memo entry must hold the
/// exact SystemCost that evaluating `system` on this actuary would
/// produce (the study-graph compiler fills it through these very entry
/// points), so a hit is bit-identical to a fresh evaluation.  The
/// explain paths never consult it: memoised results carry no ledger.
class EvalMemo {
public:
    virtual ~EvalMemo() = default;

    /// Returns true and fills `out` when (system, re_only) is memoised.
    [[nodiscard]] virtual bool lookup(const design::System& system,
                                      bool re_only,
                                      SystemCost& out) const = 0;
};

/// Facade tying the tech library, RE engine and NRE engine together.
class ChipletActuary {
public:
    /// Uses the built-in technology catalogue and default assumptions.
    ChipletActuary();
    explicit ChipletActuary(tech::TechLibrary lib, Assumptions assumptions = {});

    /// Mutable access for calibration (defect densities, D2D fractions,
    /// packaging flow, yield model...).
    [[nodiscard]] tech::TechLibrary& library() { return lib_; }
    [[nodiscard]] const tech::TechLibrary& library() const { return lib_; }
    [[nodiscard]] Assumptions& assumptions() { return assumptions_; }
    [[nodiscard]] const Assumptions& assumptions() const { return assumptions_; }

    /// Evaluates a single system as its own one-member family (no reuse).
    [[nodiscard]] SystemCost evaluate(const design::System& system) const;

    /// Evaluates a family: NRE is shared by design identity, package RE
    /// is sized by the largest member of each shared package design.
    [[nodiscard]] FamilyCost evaluate(const design::SystemFamily& family) const;

    /// Per-unit RE cost only (no NRE), convenient for Fig. 4-style
    /// manufacturing studies.
    [[nodiscard]] SystemCost evaluate_re_only(const design::System& system) const;

    /// Explain entry points: identical numbers to the evaluate()
    /// overloads, but every SystemCost additionally carries the itemised
    /// CostLedger (core/cost_ledger.h) whose folds reproduce the
    /// breakdowns bit for bit.  Ledger emission is kept off the
    /// evaluate() hot paths, so batch exploration pays nothing for it.
    [[nodiscard]] SystemCost explain(const design::System& system) const;
    [[nodiscard]] FamilyCost explain(const design::SystemFamily& family) const;
    [[nodiscard]] SystemCost explain_re_only(const design::System& system) const;

    /// Counters of one batch evaluation's die-pricing pre-pass; the
    /// hoisting regression test pins tech_setups to the number of
    /// distinct process technologies, not candidates.
    struct BatchStats {
        std::uint64_t tech_setups = 0;        ///< per-(tech, batch) setups
        std::uint64_t unique_die_queries = 0; ///< deduped (node, area) pairs
        std::uint64_t kernel_hits = 0;        ///< die prices served by kernels
        std::uint64_t scalar_fallbacks = 0;   ///< die prices left to the scalar path
    };

    /// Batch entry points: evaluate many independent systems on the
    /// process-wide thread pool (util::ThreadPool::global()).  Each
    /// system is its own one-member family, exactly like the scalar
    /// overloads; result slot i belongs to input i, so the output is
    /// bit-identical to a serial loop regardless of scheduling.
    ///
    /// Implementation: a lowering pre-pass collects every (process node,
    /// die area) the batch will price into a kernels::DieBatch — one
    /// model setup per technology — prices it with the active SIMD
    /// kernel table (src/kernels/), then assembles the SystemCosts
    /// consuming the pre-priced dies.  Kernel results are bit-identical
    /// to the scalar engine by policy, so this is purely a speedup.
    [[nodiscard]] std::vector<SystemCost> evaluate_batch(
        std::span<const design::System> systems) const;
    [[nodiscard]] std::vector<SystemCost> evaluate_batch(
        std::span<const design::System> systems, BatchStats& stats) const;
    [[nodiscard]] std::vector<SystemCost> evaluate_re_only_batch(
        std::span<const design::System> systems) const;
    [[nodiscard]] std::vector<SystemCost> evaluate_re_only_batch(
        std::span<const design::System> systems, BatchStats& stats) const;

    /// Fault-isolated batch: like the overloads above, but a system
    /// whose evaluation throws leaves filled[i] == 0 instead of
    /// aborting the batch (the cell table's tolerance contract).
    /// `costs` and `filled` are resized to systems.size().
    void evaluate_batch_isolated(std::span<const design::System> systems,
                                 bool re_only, std::vector<SystemCost>& costs,
                                 std::vector<char>& filled) const;

    /// Attaches (or, with nullptr, detaches) a non-owning evaluation
    /// memo.  Single-system evaluate/evaluate_re_only calls — and
    /// therefore the batch entry points, which go through them — return
    /// memoised results when the memo holds the cell; misses evaluate
    /// as usual.  The caller keeps `memo` alive while attached.
    void set_eval_memo(const EvalMemo* memo) { memo_ = memo; }
    [[nodiscard]] const EvalMemo* eval_memo() const { return memo_; }

private:
    [[nodiscard]] FamilyCost evaluate_family(
        const design::SystemFamily& family, bool with_ledger,
        const kernels::DieBatch* die_batch = nullptr) const;

    /// Registers every die the RE evaluation of `system` will price
    /// (placements, plus the interposer die where the packaging has
    /// one) with bit-identical areas.
    void register_system_dies(const design::System& system,
                              kernels::DieBatch& batch) const;

    [[nodiscard]] std::vector<SystemCost> evaluate_batch_impl(
        std::span<const design::System> systems, bool re_only,
        BatchStats* stats) const;

    tech::TechLibrary lib_;
    Assumptions assumptions_;
    const EvalMemo* memo_ = nullptr;  ///< non-owning; see set_eval_memo
};

}  // namespace chiplet::core
