// Non-recurring-engineering cost engine (paper Sec. 3.3, Eqs. 6-8).
//
// Design costs are counted once per *design* across a system family:
//   module design  : K_m(node) * S_module            (shared by name)
//   chip design    : K_c(node) * S_chip + masks + IP (shared by name)
//   package design : K_p(tech) * S_package + C_p     (shared by package id,
//                    + interposer mask set for InFO/2.5D)
//   D2D interface  : C_D2D(node), once per process node that appears on
//                    any D2D-carrying chip
// and then amortised over every unit that uses the design, which is how
// chiplet/package reuse turns into cost advantage (paper Sec. 5).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/cost_result.h"
#include "core/re_model.h"
#include "design/system.h"
#include "tech/tech_library.h"

namespace chiplet::core {

/// Maps each package-design id to the total die area (mm^2) the shared
/// package must be sized for: the maximum over all member systems.  Also
/// validates that sharing systems agree on the packaging technology.
[[nodiscard]] std::map<std::string, double> resolve_package_design_areas(
    const design::SystemFamily& family, const tech::TechLibrary& lib);

/// Family-level NRE evaluation result.
struct NreResult {
    /// Amortised per-unit NRE, aligned with family.systems().
    std::vector<NreBreakdown> per_system;

    /// Per-system amortised NRE terms (aligned with `per_system`), only
    /// filled when evaluate() was asked for a ledger; each ledger's
    /// fold_nre() reproduces the matching breakdown bit for bit.
    std::vector<CostLedger> per_system_ledgers;

    /// Absolute design-cost totals (USD, before amortisation).
    double modules_total = 0.0;
    double chips_total = 0.0;
    double packages_total = 0.0;
    double d2d_total = 0.0;
};

/// Computes NRE design costs and their amortisation over a family.
class NreModel {
public:
    NreModel(const tech::TechLibrary& lib, const Assumptions& assumptions);

    /// Full family evaluation.  With `with_ledger`, per_system_ledgers
    /// itemises every amortised design term; the breakdown doubles are
    /// unchanged either way.
    [[nodiscard]] NreResult evaluate(const design::SystemFamily& family,
                                     bool with_ledger = false) const;

    /// Absolute cost of designing one module (K_m S_m at its own node).
    [[nodiscard]] double module_design_cost(const design::Module& module) const;

    /// Absolute cost of designing one chip, *excluding* its modules:
    /// K_c S_c + masks + IP (paper Eq. 6 without the module sum).
    [[nodiscard]] double chip_design_cost(const design::Chip& chip) const;

    /// Absolute cost of designing one package sized for
    /// `total_die_area_mm2` of silicon: K_p S_p + C_p (+ interposer masks).
    [[nodiscard]] double package_design_cost(const std::string& packaging,
                                             double total_die_area_mm2) const;

private:
    const tech::TechLibrary* lib_;
    const Assumptions* assumptions_;
};

}  // namespace chiplet::core
