#include "core/actuary.h"

#include "util/thread_pool.h"

namespace chiplet::core {

ChipletActuary::ChipletActuary()
    : ChipletActuary(tech::TechLibrary::builtin()) {}

ChipletActuary::ChipletActuary(tech::TechLibrary lib, Assumptions assumptions)
    : lib_(std::move(lib)), assumptions_(std::move(assumptions)) {}

SystemCost ChipletActuary::evaluate(const design::System& system) const {
    design::SystemFamily family;
    family.add(system);
    return evaluate(family).systems.front();
}

SystemCost ChipletActuary::evaluate_re_only(const design::System& system) const {
    const ReModel re(lib_, assumptions_);
    return re.evaluate(system);
}

std::vector<SystemCost> ChipletActuary::evaluate_batch(
    std::span<const design::System> systems) const {
    return util::ThreadPool::global().parallel_map<SystemCost>(
        systems.size(), [&](std::size_t i) { return evaluate(systems[i]); });
}

std::vector<SystemCost> ChipletActuary::evaluate_re_only_batch(
    std::span<const design::System> systems) const {
    return util::ThreadPool::global().parallel_map<SystemCost>(
        systems.size(), [&](std::size_t i) { return evaluate_re_only(systems[i]); });
}

FamilyCost ChipletActuary::evaluate(const design::SystemFamily& family) const {
    const ReModel re(lib_, assumptions_);
    const NreModel nre(lib_, assumptions_);

    const auto design_areas = resolve_package_design_areas(family, lib_);
    const NreResult nre_result = nre.evaluate(family);

    FamilyCost out;
    out.nre_modules_total = nre_result.modules_total;
    out.nre_chips_total = nre_result.chips_total;
    out.nre_packages_total = nre_result.packages_total;
    out.nre_d2d_total = nre_result.d2d_total;

    const auto& systems = family.systems();
    out.systems.reserve(systems.size());
    for (std::size_t i = 0; i < systems.size(); ++i) {
        SystemCost cost =
            re.evaluate(systems[i], design_areas.at(systems[i].package_design()));
        cost.nre = nre_result.per_system[i];
        out.systems.push_back(std::move(cost));
    }
    return out;
}

}  // namespace chiplet::core
