#include "core/actuary.h"

#include <iterator>

#include "util/thread_pool.h"

namespace chiplet::core {

ChipletActuary::ChipletActuary()
    : ChipletActuary(tech::TechLibrary::builtin()) {}

ChipletActuary::ChipletActuary(tech::TechLibrary lib, Assumptions assumptions)
    : lib_(std::move(lib)), assumptions_(std::move(assumptions)) {}

SystemCost ChipletActuary::evaluate(const design::System& system) const {
    if (memo_ != nullptr) {
        SystemCost memoised;
        if (memo_->lookup(system, /*re_only=*/false, memoised)) return memoised;
    }
    design::SystemFamily family;
    family.add(system);
    return evaluate(family).systems.front();
}

SystemCost ChipletActuary::evaluate_re_only(const design::System& system) const {
    if (memo_ != nullptr) {
        SystemCost memoised;
        if (memo_->lookup(system, /*re_only=*/true, memoised)) return memoised;
    }
    const ReModel re(lib_, assumptions_);
    return re.evaluate(system);
}

SystemCost ChipletActuary::explain(const design::System& system) const {
    design::SystemFamily family;
    family.add(system);
    return explain(family).systems.front();
}

FamilyCost ChipletActuary::explain(const design::SystemFamily& family) const {
    return evaluate_family(family, /*with_ledger=*/true);
}

SystemCost ChipletActuary::explain_re_only(const design::System& system) const {
    const ReModel re(lib_, assumptions_);
    return re.evaluate(system, 0.0, /*with_ledger=*/true);
}

std::vector<SystemCost> ChipletActuary::evaluate_batch(
    std::span<const design::System> systems) const {
    return util::ThreadPool::global().parallel_map<SystemCost>(
        systems.size(), [&](std::size_t i) { return evaluate(systems[i]); });
}

std::vector<SystemCost> ChipletActuary::evaluate_re_only_batch(
    std::span<const design::System> systems) const {
    return util::ThreadPool::global().parallel_map<SystemCost>(
        systems.size(), [&](std::size_t i) { return evaluate_re_only(systems[i]); });
}

FamilyCost ChipletActuary::evaluate(const design::SystemFamily& family) const {
    return evaluate_family(family, /*with_ledger=*/false);
}

FamilyCost ChipletActuary::evaluate_family(const design::SystemFamily& family,
                                           bool with_ledger) const {
    const ReModel re(lib_, assumptions_);
    const NreModel nre(lib_, assumptions_);

    NreResult nre_result = nre.evaluate(family, with_ledger);

    FamilyCost out;
    out.nre_modules_total = nre_result.modules_total;
    out.nre_chips_total = nre_result.chips_total;
    out.nre_packages_total = nre_result.packages_total;
    out.nre_d2d_total = nre_result.d2d_total;

    const auto& systems = family.systems();
    // Package sizing: shared package designs are sized by their largest
    // member, which needs the string-keyed map.  The one-member family —
    // the shape batch exploration evaluates hundreds of thousands of
    // times — sizes its own package, so the map (two allocations plus
    // string hashing per evaluation) is skipped entirely.
    std::map<std::string, double> design_areas;
    if (systems.size() > 1) {
        design_areas = resolve_package_design_areas(family, lib_);
    }
    out.systems.reserve(systems.size());
    for (std::size_t i = 0; i < systems.size(); ++i) {
        const double design_area =
            systems.size() == 1
                ? package_sizing_area(systems[i], lib_)
                : design_areas.at(systems[i].package_design());
        SystemCost cost = re.evaluate(systems[i], design_area, with_ledger);
        cost.nre = nre_result.per_system[i];
        if (with_ledger) {
            // RE terms first (pricing order), then the amortised NRE
            // share of this system's designs.
            CostLedger& nre_ledger = nre_result.per_system_ledgers[i];
            cost.ledger.terms.insert(
                cost.ledger.terms.end(),
                std::make_move_iterator(nre_ledger.terms.begin()),
                std::make_move_iterator(nre_ledger.terms.end()));
        }
        out.systems.push_back(std::move(cost));
    }
    return out;
}

}  // namespace chiplet::core
