#include "core/actuary.h"

#include <iterator>
#include <utility>

#include "kernels/die_batch.h"
#include "kernels/kernels.h"
#include "util/thread_pool.h"

namespace chiplet::core {

ChipletActuary::ChipletActuary()
    : ChipletActuary(tech::TechLibrary::builtin()) {}

ChipletActuary::ChipletActuary(tech::TechLibrary lib, Assumptions assumptions)
    : lib_(std::move(lib)), assumptions_(std::move(assumptions)) {}

SystemCost ChipletActuary::evaluate(const design::System& system) const {
    if (memo_ != nullptr) {
        SystemCost memoised;
        if (memo_->lookup(system, /*re_only=*/false, memoised)) return memoised;
    }
    design::SystemFamily family;
    family.add(system);
    return evaluate(family).systems.front();
}

SystemCost ChipletActuary::evaluate_re_only(const design::System& system) const {
    if (memo_ != nullptr) {
        SystemCost memoised;
        if (memo_->lookup(system, /*re_only=*/true, memoised)) return memoised;
    }
    const ReModel re(lib_, assumptions_);
    return re.evaluate(system);
}

SystemCost ChipletActuary::explain(const design::System& system) const {
    design::SystemFamily family;
    family.add(system);
    return explain(family).systems.front();
}

FamilyCost ChipletActuary::explain(const design::SystemFamily& family) const {
    return evaluate_family(family, /*with_ledger=*/true);
}

SystemCost ChipletActuary::explain_re_only(const design::System& system) const {
    const ReModel re(lib_, assumptions_);
    return re.evaluate(system, 0.0, /*with_ledger=*/true);
}

std::vector<SystemCost> ChipletActuary::evaluate_batch(
    std::span<const design::System> systems) const {
    return evaluate_batch_impl(systems, /*re_only=*/false, nullptr);
}

std::vector<SystemCost> ChipletActuary::evaluate_batch(
    std::span<const design::System> systems, BatchStats& stats) const {
    return evaluate_batch_impl(systems, /*re_only=*/false, &stats);
}

std::vector<SystemCost> ChipletActuary::evaluate_re_only_batch(
    std::span<const design::System> systems) const {
    return evaluate_batch_impl(systems, /*re_only=*/true, nullptr);
}

std::vector<SystemCost> ChipletActuary::evaluate_re_only_batch(
    std::span<const design::System> systems, BatchStats& stats) const {
    return evaluate_batch_impl(systems, /*re_only=*/true, &stats);
}

void ChipletActuary::register_system_dies(const design::System& system,
                                          kernels::DieBatch& batch) const {
    for (const design::ChipPlacement& placement : system.placements()) {
        const tech::ProcessNode& node = lib_.node(placement.chip.node());
        batch.add(node, placement.chip.area(lib_));
    }
    const tech::PackagingTech& pkg = lib_.packaging(system.packaging());
    if (pkg.has_interposer()) {
        const tech::ProcessNode& inode = lib_.node(pkg.interposer_node);
        // The exact interposer area ReModel::evaluate computes for a
        // one-member family: the package is sized for this very system.
        batch.add(inode, pkg.interposer_area_factor *
                             package_sizing_area(system, lib_));
    }
}

std::vector<SystemCost> ChipletActuary::evaluate_batch_impl(
    std::span<const design::System> systems, bool re_only,
    BatchStats* stats) const {
    const std::size_t n = systems.size();

    // Memo pre-pass: exactly one lookup per system, like the scalar
    // entry points perform.
    std::vector<SystemCost> memoised;
    std::vector<char> has_memo;
    if (memo_ != nullptr) {
        memoised.resize(n);
        has_memo.assign(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
            if (memo_->lookup(systems[i], re_only, memoised[i])) {
                has_memo[i] = 1;
            }
        }
    }

    // Lowering pre-pass: collect every die the batch will price.  A
    // malformed system (unknown node, bad packaging) is skipped here —
    // the assembly pass below raises the canonical error from the
    // scalar path, at the same call site a serial loop would.
    kernels::DieBatch batch(assumptions_.yield_model);
    for (std::size_t i = 0; i < n; ++i) {
        if (!has_memo.empty() && has_memo[i]) continue;
        try {
            register_system_dies(systems[i], batch);
        } catch (...) {
        }
    }
    batch.evaluate(kernels::active_table());

    // Assembly: per-system SystemCost construction, consuming the
    // pre-priced dies.  Slot i belongs to input i; parallel_map
    // rethrows the lowest-index exception, matching a serial loop.
    auto out = util::ThreadPool::global().parallel_map<SystemCost>(
        n, [&](std::size_t i) {
            if (!has_memo.empty() && has_memo[i]) {
                return std::move(memoised[i]);
            }
            if (re_only) {
                const ReModel re(lib_, assumptions_, &batch);
                return re.evaluate(systems[i]);
            }
            design::SystemFamily family;
            family.add(systems[i]);
            return evaluate_family(family, /*with_ledger=*/false, &batch)
                .systems.front();
        });

    if (stats != nullptr) {
        const kernels::DieBatch::Stats s = batch.stats();
        stats->tech_setups = s.tech_setups;
        stats->unique_die_queries = s.unique_queries;
        stats->kernel_hits = s.hits;
        stats->scalar_fallbacks = s.fallbacks;
    }
    return out;
}

void ChipletActuary::evaluate_batch_isolated(
    std::span<const design::System> systems, bool re_only,
    std::vector<SystemCost>& costs, std::vector<char>& filled) const {
    const std::size_t n = systems.size();
    costs.resize(n);
    filled.assign(n, 0);

    kernels::DieBatch batch(assumptions_.yield_model);
    for (const design::System& system : systems) {
        try {
            register_system_dies(system, batch);
        } catch (...) {
        }
    }
    batch.evaluate(kernels::active_table());

    util::ThreadPool::global().parallel_for(n, [&](std::size_t i) {
        try {
            if (memo_ != nullptr &&
                memo_->lookup(systems[i], re_only, costs[i])) {
                filled[i] = 1;
                return;
            }
            if (re_only) {
                const ReModel re(lib_, assumptions_, &batch);
                costs[i] = re.evaluate(systems[i]);
            } else {
                design::SystemFamily family;
                family.add(systems[i]);
                costs[i] = evaluate_family(family, /*with_ledger=*/false, &batch)
                               .systems.front();
            }
            filled[i] = 1;
        } catch (...) {
            // leave unfilled; the owner re-evaluates and surfaces the
            // engine's own error
        }
    });
}

FamilyCost ChipletActuary::evaluate(const design::SystemFamily& family) const {
    return evaluate_family(family, /*with_ledger=*/false);
}

FamilyCost ChipletActuary::evaluate_family(
    const design::SystemFamily& family, bool with_ledger,
    const kernels::DieBatch* die_batch) const {
    const ReModel re(lib_, assumptions_, die_batch);
    const NreModel nre(lib_, assumptions_);

    NreResult nre_result = nre.evaluate(family, with_ledger);

    FamilyCost out;
    out.nre_modules_total = nre_result.modules_total;
    out.nre_chips_total = nre_result.chips_total;
    out.nre_packages_total = nre_result.packages_total;
    out.nre_d2d_total = nre_result.d2d_total;

    const auto& systems = family.systems();
    // Package sizing: shared package designs are sized by their largest
    // member, which needs the string-keyed map.  The one-member family —
    // the shape batch exploration evaluates hundreds of thousands of
    // times — sizes its own package, so the map (two allocations plus
    // string hashing per evaluation) is skipped entirely.
    std::map<std::string, double> design_areas;
    if (systems.size() > 1) {
        design_areas = resolve_package_design_areas(family, lib_);
    }
    out.systems.reserve(systems.size());
    for (std::size_t i = 0; i < systems.size(); ++i) {
        const double design_area =
            systems.size() == 1
                ? package_sizing_area(systems[i], lib_)
                : design_areas.at(systems[i].package_design());
        SystemCost cost = re.evaluate(systems[i], design_area, with_ledger);
        cost.nre = nre_result.per_system[i];
        if (with_ledger) {
            // RE terms first (pricing order), then the amortised NRE
            // share of this system's designs.
            CostLedger& nre_ledger = nre_result.per_system_ledgers[i];
            cost.ledger.terms.insert(
                cost.ledger.terms.end(),
                std::make_move_iterator(nre_ledger.terms.begin()),
                std::make_move_iterator(nre_ledger.terms.end()));
        }
        out.systems.push_back(std::move(cost));
    }
    return out;
}

}  // namespace chiplet::core
