// Result types of the cost engine.  The breakdown categories mirror the
// legends of the paper's figures so benches can print them directly.
#pragma once

#include <string>
#include <vector>

#include "core/cost_ledger.h"

namespace chiplet::core {

/// Recurring-engineering cost of one manufactured unit, itemised into the
/// paper's five components (Sec. 3.2).
struct ReBreakdown {
    double raw_chips = 0.0;        ///< silicon + bumping + wafer sort, defect-free share
    double chip_defects = 0.0;     ///< extra dies consumed by die-yield loss
    double raw_package = 0.0;      ///< substrate + interposer + bonding + package test
    double package_defects = 0.0;  ///< package materials scrapped by assembly loss
    double wasted_kgd = 0.0;       ///< known-good-die value destroyed by packaging

    [[nodiscard]] double total() const {
        return raw_chips + chip_defects + raw_package + package_defects + wasted_kgd;
    }

    /// The paper's "cost of packaging" (Fig. 5 footnote): raw package +
    /// package defects + wasted KGDs.
    [[nodiscard]] double packaging_total() const {
        return raw_package + package_defects + wasted_kgd;
    }
};

/// Amortised non-recurring engineering cost per manufactured unit,
/// itemised into the paper's categories (Sec. 3.3).
struct NreBreakdown {
    double modules = 0.0;   ///< module design + block verification (K_m S_m)
    double chips = 0.0;     ///< chip physical design + system verification + masks/IP
    double packages = 0.0;  ///< package/interposer design (K_p S_p + C_p)
    double d2d = 0.0;       ///< D2D interface design, once per process node

    [[nodiscard]] double total() const { return modules + chips + packages + d2d; }
};

/// Per-die diagnostics (one entry per distinct chip design in a system).
struct DieReport {
    std::string chip_name;
    std::string node;
    unsigned count = 0;          ///< placements in one package
    double area_mm2 = 0.0;       ///< full die area incl. D2D share
    double d2d_area_mm2 = 0.0;   ///< area spent on D2D interfaces
    double yield = 0.0;          ///< die yield at this area
    double raw_cost_usd = 0.0;   ///< per die, defect-free share
    double kgd_cost_usd = 0.0;   ///< per known good die
};

/// Complete cost picture of one system inside a family.
struct SystemCost {
    std::string system_name;
    ReBreakdown re;        ///< per unit
    NreBreakdown nre;      ///< per unit, amortised over the family
    std::vector<DieReport> dies;

    /// Itemised cost-term provenance (core/cost_ledger.h).  Empty unless
    /// the system was evaluated through an explain entry point; when
    /// present, ledger.fold_re()/fold_nre() reproduce `re`/`nre` bit for
    /// bit.
    CostLedger ledger;

    double package_design_area_mm2 = 0.0;  ///< substrate sized for this design
    double interposer_area_mm2 = 0.0;      ///< 0 when no interposer
    double quantity = 0.0;

    [[nodiscard]] double total_per_unit() const { return re.total() + nre.total(); }
    [[nodiscard]] double re_share() const { return re.total() / total_per_unit(); }
};

/// Costs of every system in a family plus family-level NRE totals.
struct FamilyCost {
    std::vector<SystemCost> systems;

    double nre_modules_total = 0.0;   ///< absolute USD, before amortisation
    double nre_chips_total = 0.0;
    double nre_packages_total = 0.0;
    double nre_d2d_total = 0.0;

    [[nodiscard]] double nre_total() const {
        return nre_modules_total + nre_chips_total + nre_packages_total +
               nre_d2d_total;
    }

    /// Sum over systems of quantity-weighted per-unit total cost.
    [[nodiscard]] double grand_total() const {
        double acc = 0.0;
        for (const auto& s : systems) acc += s.total_per_unit() * s.quantity;
        return acc;
    }

    /// Average per-unit cost across all systems, weighted by quantity
    /// (the Fig. 10 y-axis).
    [[nodiscard]] double average_unit_cost() const {
        double units = 0.0;
        for (const auto& s : systems) units += s.quantity;
        return grand_total() / units;
    }
};

}  // namespace chiplet::core
