#include "core/cost_ledger.h"

#include "core/cost_result.h"
#include "util/error.h"

namespace chiplet::core {

namespace {

constexpr const char* kCategoryNames[] = {
    "raw_chips",   "chip_defects", "raw_package", "package_defects",
    "wasted_kgd",  "nre_modules",  "nre_chips",   "nre_packages",
    "nre_d2d",
};

constexpr const char* kScopeNames[] = {"per_die", "per_package", "per_design"};

template <std::size_t N>
std::string choices(const char* const (&names)[N]) {
    std::string out;
    for (const char* name : names) {
        if (!out.empty()) out += ", ";
        out += name;
    }
    return out;
}

}  // namespace

const char* to_string(CostCategory category) {
    return kCategoryNames[static_cast<std::size_t>(category)];
}

const char* to_string(CostScope scope) {
    return kScopeNames[static_cast<std::size_t>(scope)];
}

CostCategory cost_category_from_string(const std::string& s) {
    for (std::size_t i = 0; i < std::size(kCategoryNames); ++i) {
        if (s == kCategoryNames[i]) return static_cast<CostCategory>(i);
    }
    throw ParseError("unknown cost category: '" + s + "' (expected one of: " +
                     choices(kCategoryNames) + ")");
}

CostScope cost_scope_from_string(const std::string& s) {
    for (std::size_t i = 0; i < std::size(kScopeNames); ++i) {
        if (s == kScopeNames[i]) return static_cast<CostScope>(i);
    }
    throw ParseError("unknown cost scope: '" + s + "' (expected one of: " +
                     choices(kScopeNames) + ")");
}

ReBreakdown CostLedger::fold_re() const {
    ReBreakdown out;
    for (const CostTerm& term : terms) {
        switch (term.category) {
            case CostCategory::raw_chips: out.raw_chips += term.subtotal_usd; break;
            case CostCategory::chip_defects:
                out.chip_defects += term.subtotal_usd;
                break;
            case CostCategory::raw_package:
                out.raw_package += term.subtotal_usd;
                break;
            case CostCategory::package_defects:
                out.package_defects += term.subtotal_usd;
                break;
            case CostCategory::wasted_kgd:
                out.wasted_kgd += term.subtotal_usd;
                break;
            default: break;
        }
    }
    return out;
}

NreBreakdown CostLedger::fold_nre() const {
    NreBreakdown out;
    for (const CostTerm& term : terms) {
        switch (term.category) {
            case CostCategory::nre_modules: out.modules += term.subtotal_usd; break;
            case CostCategory::nre_chips: out.chips += term.subtotal_usd; break;
            case CostCategory::nre_packages:
                out.packages += term.subtotal_usd;
                break;
            case CostCategory::nre_d2d: out.d2d += term.subtotal_usd; break;
            default: break;
        }
    }
    return out;
}

double CostLedger::total_usd() const {
    double acc = 0.0;
    for (const CostTerm& term : terms) acc += term.subtotal_usd;
    return acc;
}

}  // namespace chiplet::core
