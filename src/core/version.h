// The model-version stamp: a compiled-in identity of the cost model an
// actuary evaluates with, used to invalidate persisted caches.  A
// persisted StudyResult is only as durable as the equations and schema
// that produced it — change a yield constant, a ledger category, or the
// serialised result layout and every on-disk entry is silently wrong.
// The fingerprint folds all of that into one 64-bit FNV-1a value:
//
//  - kModelSchemaVersion, bumped by hand whenever the cost equations,
//    the StudyResult surface, or the cache codec change shape;
//  - the ledger schema (every CostCategory / CostScope name, in order);
//  - the actuary's Assumptions (flow, yield model, stitching constants,
//    reticle geometry — bit-cast doubles);
//  - the actuary's entire tech library, via its canonical JSON document,
//    so a calibrated or overridden library stamps differently from the
//    built-in catalogue.
//
// Two processes agree on the fingerprint exactly when they would price
// every system identically, which is the contract the warm-start cache
// needs: a stale entry is rejected by a cheap integer compare, never by
// noticing wrong numbers later.
#pragma once

#include <cstdint>
#include <string>

namespace chiplet::core {

class ChipletActuary;

/// Bump when the cost equations, result schema, or cache codec change
/// in any way that invalidates persisted results.
inline constexpr int kModelSchemaVersion = 1;

/// Fingerprint of the model `actuary` evaluates with (schema + ledger
/// vocabulary + assumptions + full tech library).  Deterministic across
/// platforms and process runs.
[[nodiscard]] std::uint64_t model_fingerprint(const ChipletActuary& actuary);

/// Fingerprint of a default-constructed actuary (the built-in
/// catalogue); memoised after the first call.
[[nodiscard]] std::uint64_t model_fingerprint();

/// Human-readable stamp, e.g. "model-schema 1, fingerprint
/// 9f86d081884c7d65" — what `actuary_cli --version` and the `metrics`
/// verb print.
[[nodiscard]] std::string model_version_string(std::uint64_t fingerprint);
[[nodiscard]] std::string model_version_string();

}  // namespace chiplet::core
