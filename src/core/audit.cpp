#include "core/audit.h"

#include <algorithm>

#include "util/error.h"
#include "util/strings.h"
#include "wafer/reticle.h"

namespace chiplet::core {

std::string to_string(Severity severity) {
    switch (severity) {
        case Severity::info: return "info";
        case Severity::warning: return "warning";
        case Severity::critical: return "critical";
    }
    throw ParameterError("invalid Severity");
}

std::vector<AuditFinding> audit_system(const ChipletActuary& actuary,
                                       const design::System& system,
                                       const AuditConfig& config) {
    const SystemCost cost = actuary.evaluate(system);
    std::vector<AuditFinding> findings;
    const auto add = [&](Severity severity, std::string code,
                         std::string message) {
        findings.push_back(
            AuditFinding{severity, std::move(code), std::move(message)});
    };

    // ---- reticle limits -------------------------------------------------------
    for (const DieReport& die : cost.dies) {
        if (!wafer::fits_single_reticle(config.reticle, die.area_mm2)) {
            add(Severity::critical, "reticle.exceeded",
                "die '" + die.chip_name + "' (" + format_fixed(die.area_mm2, 0) +
                    " mm^2) exceeds the " +
                    format_fixed(config.reticle.area_mm2(), 0) +
                    " mm^2 reticle field");
        }
    }
    if (cost.interposer_area_mm2 > 0.0) {
        const unsigned stitches =
            wafer::stitch_count(config.reticle, cost.interposer_area_mm2);
        if (stitches > 4) {
            add(Severity::warning, "interposer.stitching",
                "interposer of " + format_fixed(cost.interposer_area_mm2, 0) +
                    " mm^2 needs " + std::to_string(stitches) +
                    " stitched exposures");
        } else if (stitches > 1) {
            add(Severity::info, "interposer.stitching",
                "interposer of " + format_fixed(cost.interposer_area_mm2, 0) +
                    " mm^2 is reticle-stitched (" + std::to_string(stitches) +
                    " fields)");
        }
    }

    // ---- yield ------------------------------------------------------------------
    for (const DieReport& die : cost.dies) {
        if (die.yield < config.max_die_yield_warn) {
            add(Severity::warning, "yield.low",
                "die '" + die.chip_name + "' yields only " +
                    format_pct(die.yield) + " at " +
                    format_fixed(die.area_mm2, 0) +
                    " mm^2 — consider re-partitioning (paper Sec. 4.1)");
        }
        if (die.d2d_area_mm2 / die.area_mm2 > config.d2d_fraction_warn) {
            add(Severity::warning, "d2d.heavy",
                "die '" + die.chip_name + "' spends " +
                    format_pct(die.d2d_area_mm2 / die.area_mm2) +
                    " of its area on D2D interfaces");
        }
    }

    // ---- cost structure -----------------------------------------------------------
    const double packaging_share =
        cost.re.packaging_total() / cost.re.total();
    if (system.die_count() > 1 && packaging_share > config.packaging_share_warn) {
        add(Severity::warning, "packaging.dominant",
            "packaging is " + format_pct(packaging_share) +
                " of the RE cost — the multi-chip overhead may exceed the "
                "yield benefit (paper Sec. 4.1)");
    }
    const double nre_share = cost.nre.total() / cost.total_per_unit();
    if (nre_share > config.nre_share_warn) {
        add(Severity::warning, "nre.dominant",
            "amortised NRE is " + format_pct(nre_share) +
                " of the unit cost at " + format_quantity(system.quantity()) +
                " units — monolithic SoC or higher volume may be better "
                "(paper Sec. 4.2)");
    }
    if (system.die_count() > config.die_count_warn) {
        add(Severity::warning, "assembly.deep",
            std::to_string(system.die_count()) +
                " dies in one package: bonding losses compound (y2^n)");
    }

    std::stable_sort(findings.begin(), findings.end(),
                     [](const AuditFinding& a, const AuditFinding& b) {
                         return static_cast<int>(a.severity) >
                                static_cast<int>(b.severity);
                     });
    return findings;
}

bool audit_dies_feasible(std::span<const double> die_areas_mm2,
                         const AuditConfig& config) {
    return std::all_of(die_areas_mm2.begin(), die_areas_mm2.end(),
                       [&](double area) {
                           return wafer::fits_single_reticle(config.reticle, area);
                       });
}

bool audit_passes(const std::vector<AuditFinding>& findings) {
    return std::none_of(findings.begin(), findings.end(),
                        [](const AuditFinding& f) {
                            return f.severity == Severity::critical;
                        });
}

}  // namespace chiplet::core
