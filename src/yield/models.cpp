#include "yield/models.h"

#include <cmath>

#include "util/error.h"

namespace chiplet::yield {

double YieldModel::expected_defects(double defects_per_cm2, double area_mm2) {
    CHIPLET_EXPECTS(defects_per_cm2 >= 0.0, "defect density must be non-negative");
    CHIPLET_EXPECTS(area_mm2 >= 0.0, "die area must be non-negative");
    constexpr double mm2_per_cm2 = 100.0;
    return defects_per_cm2 * area_mm2 / mm2_per_cm2;
}

double PoissonYield::yield(double defects_per_cm2, double area_mm2) const {
    return std::exp(-expected_defects(defects_per_cm2, area_mm2));
}

std::unique_ptr<YieldModel> PoissonYield::clone() const {
    return std::make_unique<PoissonYield>(*this);
}

SeedsNegativeBinomial::SeedsNegativeBinomial(double cluster_param)
    : cluster_param_(cluster_param) {
    CHIPLET_EXPECTS(cluster_param > 0.0, "cluster parameter must be positive");
}

double SeedsNegativeBinomial::yield(double defects_per_cm2, double area_mm2) const {
    const double ds = expected_defects(defects_per_cm2, area_mm2);
    return std::pow(1.0 + ds / cluster_param_, -cluster_param_);
}

std::unique_ptr<YieldModel> SeedsNegativeBinomial::clone() const {
    return std::make_unique<SeedsNegativeBinomial>(*this);
}

double MurphyYield::yield(double defects_per_cm2, double area_mm2) const {
    const double ds = expected_defects(defects_per_cm2, area_mm2);
    if (ds == 0.0) return 1.0;
    const double factor = (1.0 - std::exp(-ds)) / ds;
    return factor * factor;
}

std::unique_ptr<YieldModel> MurphyYield::clone() const {
    return std::make_unique<MurphyYield>(*this);
}

double SeedsExponential::yield(double defects_per_cm2, double area_mm2) const {
    return 1.0 / (1.0 + expected_defects(defects_per_cm2, area_mm2));
}

std::unique_ptr<YieldModel> SeedsExponential::clone() const {
    return std::make_unique<SeedsExponential>(*this);
}

BoseEinsteinYield::BoseEinsteinYield(double critical_layers)
    : critical_layers_(critical_layers) {
    CHIPLET_EXPECTS(critical_layers > 0.0, "critical layer count must be positive");
}

double BoseEinsteinYield::yield(double defects_per_cm2, double area_mm2) const {
    const double ds = expected_defects(defects_per_cm2, area_mm2);
    return std::pow(1.0 + ds, -critical_layers_);
}

std::unique_ptr<YieldModel> BoseEinsteinYield::clone() const {
    return std::make_unique<BoseEinsteinYield>(*this);
}

namespace {

/// One registry drives both the factory dispatch and the diagnostic's
/// list of valid names, so they cannot drift apart.
struct ModelEntry {
    const char* name;
    std::unique_ptr<YieldModel> (*make)(double cluster_param);
};

constexpr ModelEntry kModels[] = {
    {"poisson",
     [](double) -> std::unique_ptr<YieldModel> {
         return std::make_unique<PoissonYield>();
     }},
    {"seeds_negative_binomial",
     [](double c) -> std::unique_ptr<YieldModel> {
         return std::make_unique<SeedsNegativeBinomial>(c);
     }},
    {"murphy",
     [](double) -> std::unique_ptr<YieldModel> {
         return std::make_unique<MurphyYield>();
     }},
    {"seeds_exponential",
     [](double) -> std::unique_ptr<YieldModel> {
         return std::make_unique<SeedsExponential>();
     }},
    {"bose_einstein",
     [](double c) -> std::unique_ptr<YieldModel> {
         return std::make_unique<BoseEinsteinYield>(c);
     }},
};

}  // namespace

std::unique_ptr<YieldModel> make_yield_model(const std::string& name,
                                             double cluster_param) {
    for (const ModelEntry& entry : kModels) {
        if (name == entry.name) return entry.make(cluster_param);
    }
    // Same shape as the integration_type / packaging_flow parse errors:
    // name the bad token, list every valid choice.
    std::string choices;
    for (const ModelEntry& entry : kModels) {
        if (!choices.empty()) choices += ", ";
        choices += entry.name;
    }
    throw LookupError("unknown yield model: '" + name +
                      "' (expected one of: " + choices + ")");
}

}  // namespace chiplet::yield
