#include "yield/learning.h"

#include <cmath>

#include "util/error.h"

namespace chiplet::yield {

DefectLearningCurve::DefectLearningCurve(double initial_defects_per_cm2,
                                         double mature_defects_per_cm2,
                                         double tau_months)
    : initial_(initial_defects_per_cm2),
      mature_(mature_defects_per_cm2),
      tau_(tau_months) {
    CHIPLET_EXPECTS(mature_ >= 0.0, "mature defect density must be non-negative");
    CHIPLET_EXPECTS(initial_ >= mature_,
                    "initial defect density must be >= mature density");
    CHIPLET_EXPECTS(tau_ > 0.0, "learning time constant must be positive");
}

double DefectLearningCurve::defect_density(double months) const {
    CHIPLET_EXPECTS(months >= 0.0, "months must be non-negative");
    return mature_ + (initial_ - mature_) * std::exp(-months / tau_);
}

double DefectLearningCurve::months_to_reach(double target_defects_per_cm2) const {
    CHIPLET_EXPECTS(target_defects_per_cm2 > mature_ &&
                        target_defects_per_cm2 <= initial_,
                    "target density must lie in (mature, initial]");
    if (initial_ == mature_) return 0.0;
    const double fraction = (target_defects_per_cm2 - mature_) / (initial_ - mature_);
    return -tau_ * std::log(fraction);
}

}  // namespace chiplet::yield
