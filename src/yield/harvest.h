// Die harvesting (binning): selling parts with some defective units
// disabled (e.g. a 6-of-8-core bin).  Harvesting is the monolithic
// die's counterweight to the chiplet yield story — a salvaged SoC
// recovers much of the yield loss the paper's Eq. 1 charges it —
// so this extension lets the cost model compare *effective* yields.
#pragma once

#include <vector>

#include "yield/yield_model.h"

namespace chiplet::yield {

/// A die split into `unit_count` identical redundancy units (cores,
/// channels...) of `unit_area_mm2` each, plus `base_area_mm2` of
/// non-redundant logic that must always be defect-free.
struct HarvestSpec {
    double base_area_mm2 = 0.0;
    double unit_area_mm2 = 0.0;
    unsigned unit_count = 0;
};

/// P(exactly k of the units are good) for k = 0..unit_count, assuming
/// independent unit survival with probability `model.yield(D, unit_area)`.
/// (Clustering makes real units positively correlated; this is the
/// standard conservative simplification.)
[[nodiscard]] std::vector<double> unit_survival_distribution(
    const YieldModel& model, double defects_per_cm2, const HarvestSpec& spec);

/// Yield of dies with at least `min_good_units` working units and a
/// defect-free base: Y_base * P(good units >= k).
[[nodiscard]] double harvested_yield(const YieldModel& model,
                                     double defects_per_cm2,
                                     const HarvestSpec& spec,
                                     unsigned min_good_units);

/// Expected number of good units per manufactured die (base must
/// survive for any unit to be sellable).
[[nodiscard]] double expected_good_units(const YieldModel& model,
                                         double defects_per_cm2,
                                         const HarvestSpec& spec);

/// A sales bin: dies with at least `min_good_units` working units sell
/// at `price_factor` of the full part's price (descending bins).
struct HarvestBin {
    unsigned min_good_units = 0;
    double price_factor = 1.0;
};

/// Effective revenue-weighted yield: each die falls into the best bin
/// it qualifies for; the result is sum_bins P(bin) * price_factor —
/// i.e. the fraction of a full part's value recovered per raw die.
/// Bins must be sorted by descending min_good_units; throws
/// ParameterError otherwise.
[[nodiscard]] double effective_yield(const YieldModel& model,
                                     double defects_per_cm2,
                                     const HarvestSpec& spec,
                                     const std::vector<HarvestBin>& bins);

}  // namespace chiplet::yield
