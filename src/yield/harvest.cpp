#include "yield/harvest.h"

#include <cmath>

#include "util/error.h"
#include "util/math.h"

namespace chiplet::yield {

namespace {
void check_spec(const HarvestSpec& spec) {
    CHIPLET_EXPECTS(spec.base_area_mm2 >= 0.0, "base area must be >= 0");
    CHIPLET_EXPECTS(spec.unit_area_mm2 > 0.0, "unit area must be positive");
    CHIPLET_EXPECTS(spec.unit_count > 0, "need at least one redundancy unit");
}
}  // namespace

std::vector<double> unit_survival_distribution(const YieldModel& model,
                                               double defects_per_cm2,
                                               const HarvestSpec& spec) {
    check_spec(spec);
    const double p = model.yield(defects_per_cm2, spec.unit_area_mm2);
    const unsigned n = spec.unit_count;
    std::vector<double> dist(n + 1, 0.0);
    if (p >= 1.0) {
        dist[n] = 1.0;
        return dist;
    }
    // Stable binomial PMF recurrence (integer binomial coefficients would
    // overflow for realistic core counts):
    //   P(k) = P(k-1) * (n - k + 1) / k * p / (1 - p)
    dist[0] = std::pow(1.0 - p, static_cast<double>(n));
    const double odds = p / (1.0 - p);
    for (unsigned k = 1; k <= n; ++k) {
        dist[k] = dist[k - 1] * static_cast<double>(n - k + 1) /
                  static_cast<double>(k) * odds;
    }
    return dist;
}

double harvested_yield(const YieldModel& model, double defects_per_cm2,
                       const HarvestSpec& spec, unsigned min_good_units) {
    check_spec(spec);
    CHIPLET_EXPECTS(min_good_units <= spec.unit_count,
                    "cannot require more good units than exist");
    const double y_base = spec.base_area_mm2 > 0.0
                              ? model.yield(defects_per_cm2, spec.base_area_mm2)
                              : 1.0;
    const auto dist = unit_survival_distribution(model, defects_per_cm2, spec);
    double tail = 0.0;
    for (unsigned k = min_good_units; k <= spec.unit_count; ++k) tail += dist[k];
    return y_base * tail;
}

double expected_good_units(const YieldModel& model, double defects_per_cm2,
                           const HarvestSpec& spec) {
    check_spec(spec);
    const double y_base = spec.base_area_mm2 > 0.0
                              ? model.yield(defects_per_cm2, spec.base_area_mm2)
                              : 1.0;
    const double p = model.yield(defects_per_cm2, spec.unit_area_mm2);
    return y_base * p * static_cast<double>(spec.unit_count);
}

double effective_yield(const YieldModel& model, double defects_per_cm2,
                       const HarvestSpec& spec,
                       const std::vector<HarvestBin>& bins) {
    check_spec(spec);
    CHIPLET_EXPECTS(!bins.empty(), "need at least one sales bin");
    for (std::size_t i = 1; i < bins.size(); ++i) {
        CHIPLET_EXPECTS(bins[i].min_good_units < bins[i - 1].min_good_units,
                        "bins must be sorted by descending min_good_units");
    }
    for (const HarvestBin& bin : bins) {
        CHIPLET_EXPECTS(bin.min_good_units <= spec.unit_count,
                        "bin requires more units than exist");
        CHIPLET_EXPECTS(bin.price_factor >= 0.0 && bin.price_factor <= 1.0,
                        "price factor must lie in [0, 1]");
    }

    const double y_base = spec.base_area_mm2 > 0.0
                              ? model.yield(defects_per_cm2, spec.base_area_mm2)
                              : 1.0;
    const auto dist = unit_survival_distribution(model, defects_per_cm2, spec);

    double value = 0.0;
    for (unsigned k = 0; k <= spec.unit_count; ++k) {
        // Best (first) bin this die qualifies for.
        for (const HarvestBin& bin : bins) {
            if (k >= bin.min_good_units) {
                value += dist[k] * bin.price_factor;
                break;
            }
        }
    }
    return y_base * value;
}

}  // namespace chiplet::yield
