// Die-yield model interface.  Conventions used throughout the library:
//   - defect density D is given in defects per cm^2 (the unit used by
//     foundry disclosures, e.g. TSMC N5 ~ 0.10 /cm^2),
//   - silicon area S is given in mm^2 (the unit used for die sizes),
// so implementations convert area to cm^2 internally.
#pragma once

#include <memory>
#include <string>

namespace chiplet::yield {

/// Fraction of dies with no killer defect, as a function of area.
/// Implementations must be monotonically non-increasing in both defect
/// density and area, with yield(D, 0) == 1.
class YieldModel {
public:
    virtual ~YieldModel() = default;

    /// Yield in (0, 1] for a die of `area_mm2` at `defects_per_cm2`.
    /// Throws ParameterError for negative inputs.
    [[nodiscard]] virtual double yield(double defects_per_cm2,
                                       double area_mm2) const = 0;

    /// Human-readable model name ("seeds_negative_binomial", ...).
    [[nodiscard]] virtual std::string name() const = 0;

    /// Deep copy (models are small value-like objects behind the interface).
    [[nodiscard]] virtual std::unique_ptr<YieldModel> clone() const = 0;

protected:
    /// Shared precondition check and area-unit conversion: returns D * S
    /// with S converted to cm^2 (the dimensionless expected defect count).
    [[nodiscard]] static double expected_defects(double defects_per_cm2,
                                                 double area_mm2);
};

}  // namespace chiplet::yield
