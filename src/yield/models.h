// Classical die-yield models.  The paper (Eq. 1) uses the Seeds /
// negative-binomial form; the others are provided for the yield-model
// ablation bench and for users calibrating against fabs that publish
// Poisson or Murphy numbers.
#pragma once

#include "yield/yield_model.h"

namespace chiplet::yield {

/// Poisson model: Y = exp(-D S).  Pessimistic for large dies because it
/// ignores defect clustering.
class PoissonYield final : public YieldModel {
public:
    [[nodiscard]] double yield(double defects_per_cm2, double area_mm2) const override;
    [[nodiscard]] std::string name() const override { return "poisson"; }
    [[nodiscard]] std::unique_ptr<YieldModel> clone() const override;
};

/// Paper Eq. 1: Y = (1 + D S / c)^(-c).  `c` is the clustering parameter
/// of the negative-binomial model, equivalently the number of critical
/// levels in Seeds' model.  c -> infinity recovers Poisson.
class SeedsNegativeBinomial final : public YieldModel {
public:
    /// Throws ParameterError unless cluster_param > 0.
    explicit SeedsNegativeBinomial(double cluster_param);

    [[nodiscard]] double yield(double defects_per_cm2, double area_mm2) const override;
    [[nodiscard]] std::string name() const override { return "seeds_negative_binomial"; }
    [[nodiscard]] std::unique_ptr<YieldModel> clone() const override;

    [[nodiscard]] double cluster_param() const { return cluster_param_; }

private:
    double cluster_param_;
};

/// Murphy's model: Y = ((1 - exp(-D S)) / (D S))^2.  The historical
/// industry compromise between Poisson and uniform defect densities.
class MurphyYield final : public YieldModel {
public:
    [[nodiscard]] double yield(double defects_per_cm2, double area_mm2) const override;
    [[nodiscard]] std::string name() const override { return "murphy"; }
    [[nodiscard]] std::unique_ptr<YieldModel> clone() const override;
};

/// Seeds' exponential model: Y = 1 / (1 + D S).  The most optimistic
/// classical model for large dies (heavy clustering).
class SeedsExponential final : public YieldModel {
public:
    [[nodiscard]] double yield(double defects_per_cm2, double area_mm2) const override;
    [[nodiscard]] std::string name() const override { return "seeds_exponential"; }
    [[nodiscard]] std::unique_ptr<YieldModel> clone() const override;
};

/// Bose-Einstein model: Y = (1 + D S)^(-c) with c critical layers —
/// the per-layer exponential-clustering view; coincides with Seeds'
/// exponential at c = 1 and with the negative binomial's shape for the
/// same c at small D S.
class BoseEinsteinYield final : public YieldModel {
public:
    /// Throws ParameterError unless critical_layers > 0.
    explicit BoseEinsteinYield(double critical_layers);

    [[nodiscard]] double yield(double defects_per_cm2, double area_mm2) const override;
    [[nodiscard]] std::string name() const override { return "bose_einstein"; }
    [[nodiscard]] std::unique_ptr<YieldModel> clone() const override;

    [[nodiscard]] double critical_layers() const { return critical_layers_; }

private:
    double critical_layers_;
};

/// Factory by name ("poisson", "seeds_negative_binomial", "murphy",
/// "seeds_exponential", "bose_einstein"); `cluster_param` applies to the
/// negative-binomial (clustering) and Bose-Einstein (critical layers)
/// models.  Throws LookupError for unknown names.
[[nodiscard]] std::unique_ptr<YieldModel> make_yield_model(const std::string& name,
                                                           double cluster_param = 10.0);

}  // namespace chiplet::yield
