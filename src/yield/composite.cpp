#include "yield/composite.h"

#include <cmath>

#include "util/error.h"

namespace chiplet::yield {

namespace {
void check_yield(double y) {
    CHIPLET_EXPECTS(y > 0.0 && y <= 1.0, "stage yield must lie in (0, 1]");
}
}  // namespace

double serial_yield(const std::vector<double>& stage_yields) {
    double product = 1.0;
    for (double y : stage_yields) {
        check_yield(y);
        product *= y;
    }
    return product;
}

double repeated_yield(double step_yield, unsigned n) {
    check_yield(step_yield);
    return std::pow(step_yield, static_cast<double>(n));
}

double attempts_per_good(double yield_value) {
    check_yield(yield_value);
    return 1.0 / yield_value;
}

double scrap_factor(double yield_value) {
    check_yield(yield_value);
    return 1.0 / yield_value - 1.0;
}

}  // namespace chiplet::yield
