// Defect-density learning curve.  The paper notes that the multi-chip
// advantage shrinks "as the yield of 7nm technology improves in recent
// years"; this extension models that improvement so break-even analyses
// can be run against process maturity instead of a fixed defect density.
#pragma once

namespace chiplet::yield {

/// Exponential maturity model:
///   D(t) = D_mature + (D_initial - D_mature) * exp(-t / tau)
/// with t in months since risk production and tau the learning time
/// constant.  D_initial >= D_mature >= 0.
class DefectLearningCurve {
public:
    /// Throws ParameterError when densities are negative, ordered wrongly,
    /// or tau_months <= 0.
    DefectLearningCurve(double initial_defects_per_cm2,
                        double mature_defects_per_cm2, double tau_months);

    /// Defect density after `months` of volume production (months >= 0).
    [[nodiscard]] double defect_density(double months) const;

    /// Months needed to reach the given density; throws ParameterError when
    /// the target is outside (mature, initial].
    [[nodiscard]] double months_to_reach(double target_defects_per_cm2) const;

    [[nodiscard]] double initial() const { return initial_; }
    [[nodiscard]] double mature() const { return mature_; }
    [[nodiscard]] double tau() const { return tau_; }

private:
    double initial_;
    double mature_;
    double tau_;
};

}  // namespace chiplet::yield
