// Yield composition for multi-stage manufacturing flows (paper Eq. 2) and
// repeated bonding steps (the y2^n terms of Eq. 4).
#pragma once

#include <vector>

namespace chiplet::yield {

/// Overall yield of a serial flow: the product of stage yields
/// (paper Eq. 2: Y = Y_wafer * Y_die * Y_packaging * Y_test).
/// Throws ParameterError when any stage yield lies outside (0, 1].
[[nodiscard]] double serial_yield(const std::vector<double>& stage_yields);

/// Yield of `n` independent repetitions of one step: y^n.  Used for
/// bonding n chips onto one substrate/interposer.
[[nodiscard]] double repeated_yield(double step_yield, unsigned n);

/// Expected number of raw attempts needed per good unit: 1 / y.
[[nodiscard]] double attempts_per_good(double yield_value);

/// Scrap multiplier: expected extra units consumed per good unit,
/// 1 / y - 1.  This is the factor the paper multiplies component cost by
/// to obtain defect-loss cost.
[[nodiscard]] double scrap_factor(double yield_value);

}  // namespace chiplet::yield
